"""Transistor-level compact latching error indicator (ref. [9]).

The behavioural :class:`~repro.testing.indicator.ErrorIndicator` is enough
for scheme-level studies; this module provides an electrical realisation in
the spirit of the paper's reference [9] (Metra, Favalli, Ricco, *Compact
and Highly Testable Error Indicator*), so the whole chain - sensing circuit
plus indicator - can be validated in one transistor-level simulation.

Topology (12 transistors):

* two input inverters produce ``y1b``, ``y2b``;
* a storage node ``st`` is precharged high through a PMOS (active-low
  ``prech``) during the clock-low phase;
* two series NMOS branches ``(y1, y2b)`` and ``(y1b, y2)`` discharge
  ``st`` when the sensor pair is a *non-code* word (``01`` / ``10``) -
  i.e. the XOR of the interpreted outputs;
* a weak PMOS keeper (gated by the output) holds ``st`` against transient
  leakage during the simultaneous output transitions of normal operation;
* an output inverter makes ``err = NOT(st)``: the flag rises on an error
  indication and *stays up* until the next precharge - the latching
  behaviour the scan path / checker needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.circuit.netlist import Netlist
from repro.devices.mosfet import MosfetType
from repro.devices.process import ProcessParams, nominal_process
from repro.units import fF, um


@dataclass
class IndicatorCircuit:
    """Builder for the latching indicator netlist.

    Node convention (all names prefixed with ``prefix``): inputs ``y1``,
    ``y2`` and ``prech`` are *not* prefixed - they are expected to be
    wired to the sensor outputs and the precharge strobe.

    Attributes
    ----------
    process:
        Model cards.
    w_n, w_p:
        Discharge / inverter device widths.
    w_keeper:
        Weak keeper PMOS width (must lose against a real discharge but
        win against transient glitch currents).
    c_store:
        Explicit storage capacitance on ``st`` - glitch filtering.
    prefix:
        Name prefix for internal nodes/devices (lets several indicators
        coexist in one netlist).
    """

    process: Optional[ProcessParams] = None
    w_n: float = um(2.4)
    w_p: float = um(4.8)
    w_keeper: float = um(1.2)
    length: float = um(1.2)
    c_store: float = fF(30)
    prefix: str = "ind"

    def __post_init__(self) -> None:
        if self.process is None:
            self.process = nominal_process()

    # ------------------------------------------------------------------ #
    def node(self, name: str) -> str:
        """Prefixed internal node name."""
        return f"{self.prefix}_{name}"

    @property
    def output(self) -> str:
        """The error flag node (high = error latched)."""
        return self.node("err")

    @property
    def storage(self) -> str:
        """The dynamic storage node."""
        return self.node("st")

    def dc_guess(self) -> Dict[str, float]:
        """Idle state: storage precharged high, flag low."""
        vdd = self.process.vdd
        return {
            self.storage: vdd,
            self.output: 0.0,
            self.node("y1b"): 0.0,
            self.node("y2b"): 0.0,
            self.node("m1"): vdd,
            self.node("m2"): vdd,
        }

    # ------------------------------------------------------------------ #
    def build_into(
        self,
        netlist: Netlist,
        y1: str = "y1",
        y2: str = "y2",
        prech: str = "prech",
    ) -> str:
        """Add the indicator to ``netlist``, returning the flag node.

        ``y1`` / ``y2`` are the monitored (sensor output) nodes; ``prech``
        is the active-low precharge strobe.
        """
        p = self.process
        pre = self.node

        def inverter(tag: str, inp: str, out: str) -> None:
            netlist.add_mosfet(
                pre(f"{tag}_p"), out, inp, "vdd",
                MosfetType.PMOS, self.w_p, self.length, p.pmos,
            )
            netlist.add_mosfet(
                pre(f"{tag}_n"), out, inp, "0",
                MosfetType.NMOS, self.w_n, self.length, p.nmos,
            )

        inverter("inv1", y1, pre("y1b"))
        inverter("inv2", y2, pre("y2b"))

        st = self.storage
        netlist.add_mosfet(
            pre("mpre"), st, prech, "vdd",
            MosfetType.PMOS, self.w_p, self.length, p.pmos,
        )
        # Discharge branch 1: y1 AND NOT y2.
        netlist.add_mosfet(
            pre("md1a"), st, y1, pre("m1"),
            MosfetType.NMOS, self.w_n, self.length, p.nmos,
        )
        netlist.add_mosfet(
            pre("md1b"), pre("m1"), pre("y2b"), "0",
            MosfetType.NMOS, self.w_n, self.length, p.nmos,
        )
        # Discharge branch 2: NOT y1 AND y2.
        netlist.add_mosfet(
            pre("md2a"), st, pre("y1b"), pre("m2"),
            MosfetType.NMOS, self.w_n, self.length, p.nmos,
        )
        netlist.add_mosfet(
            pre("md2b"), pre("m2"), y2, "0",
            MosfetType.NMOS, self.w_n, self.length, p.nmos,
        )
        # Storage, keeper, output flag.
        netlist.add_capacitor(pre("cst"), st, "0", self.c_store)
        inverter("invo", st, self.output)
        netlist.add_mosfet(
            pre("mkeep"), st, self.output, "vdd",
            MosfetType.PMOS, self.w_keeper, self.length, p.pmos,
        )
        netlist.add_capacitor(pre("cout"), self.output, "0", fF(10))
        return self.output
