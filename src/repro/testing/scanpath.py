"""Scan-path readout for off-line testing.

In the off-line application the latched indicator responses "could be
driven through a scan path" (Sec. 2).  The scan path is a serial shift
register: at capture, every indicator's latch is loaded in parallel; the
tester then shifts the chain out one bit per scan clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.testing.indicator import ErrorIndicator


@dataclass
class ScanPath:
    """A serial scan chain over a set of error indicators.

    The chain order is the placement order; bit 0 is the first indicator
    scanned out.
    """

    indicators: List[ErrorIndicator] = field(default_factory=list)
    _register: List[int] = field(default_factory=list)

    def attach(self, indicator: ErrorIndicator) -> None:
        """Append an indicator to the chain."""
        self.indicators.append(indicator)

    def __len__(self) -> int:
        return len(self.indicators)

    def capture(self) -> None:
        """Parallel-load every indicator latch into the shift register."""
        self._register = [1 if ind.latched else 0 for ind in self.indicators]

    def shift_out(self, scan_in: Sequence[int] = ()) -> List[int]:
        """Shift the whole chain out, optionally shifting ``scan_in`` in.

        Returns the captured bits in chain order.  ``scan_in`` (padded
        with zeros) becomes the new register contents, which is how a
        tester clears the chain between test sessions.
        """
        out = list(self._register)
        pad = list(scan_in) + [0] * (len(self.indicators) - len(scan_in))
        self._register = pad[: len(self.indicators)]
        return out

    def read(self) -> List[int]:
        """Capture and shift out in one call (the common test-flow step)."""
        self.capture()
        return self.shift_out()

    def flagged(self) -> List[str]:
        """Names of indicators currently latched."""
        return [ind.name for ind in self.indicators if ind.latched]

    def reset_all(self) -> None:
        """Reset every indicator and clear the register."""
        for ind in self.indicators:
            ind.reset()
        self._register = [0] * len(self.indicators)
