"""The full testing scheme of Fig. 6.

Sensing circuits are attached to critical couples of clock wires in the
distribution tree; each sensor's outputs feed a latching error indicator;
indicators are read either through a scan path (off-line testing) or a
two-rail checker (on-line / self-checking operation).

Two evaluation modes are provided per monitored pair:

* **behavioural** (default): the pair's skew, computed by the Elmore
  timing of the (possibly faulted) tree, is compared against the sensor's
  calibrated sensitivity ``tau_min`` - fast enough to sweep hundreds of
  fault scenarios;
* **electrical**: the transistor-level sensor is simulated with the
  actual skewed clock pair - the ground truth used to validate the
  behavioural mode and to produce waveforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analog.engine import TransientOptions
from repro.clocktree.rc import WireModel, elmore_delays
from repro.clocktree.skew import CriticalPair, select_critical_pairs
from repro.clocktree.tree import ClockTree
from repro.core.response import simulate_sensor
from repro.core.sensing import SkewSensor
from repro.testing.checker import TwoRailChecker
from repro.testing.indicator import ErrorIndicator
from repro.testing.scanpath import ScanPath
from repro.units import VTH_INTERPRET, ns


@dataclass
class SensorPlacement:
    """One sensor wired to a monitored pair of clock sinks."""

    pair: CriticalPair
    sensor: SkewSensor
    tau_min: float
    indicator: ErrorIndicator = field(default=None)

    def __post_init__(self) -> None:
        if self.indicator is None:
            self.indicator = ErrorIndicator(
                name=f"{self.pair.sink_a}/{self.pair.sink_b}"
            )


@dataclass
class PairObservation:
    """Result of evaluating one monitored pair under one tree state."""

    placement: SensorPlacement
    skew: float
    code: Tuple[int, int]

    @property
    def flagged(self) -> bool:
        """True when the sensor emitted an error indication."""
        return self.code not in ((0, 0), (1, 1))


class ClockTestingScheme:
    """Sensors + indicators + readout over one clock tree.

    Parameters
    ----------
    tree:
        The monitored clock distribution.
    placements:
        Monitored pairs with their sensors; build with
        :meth:`plan` for automatic critical-pair selection.
    model, source_resistance:
        Timing model (must match the one used at design time).
    """

    def __init__(
        self,
        tree: ClockTree,
        placements: Sequence[SensorPlacement],
        model: Optional[WireModel] = None,
        source_resistance: float = 100.0,
    ) -> None:
        self.tree = tree
        self.placements = list(placements)
        self.model = model or WireModel()
        self.source_resistance = source_resistance
        self.scan_path = ScanPath()
        for placement in self.placements:
            self.scan_path.attach(placement.indicator)
        self.checker = TwoRailChecker(n_inputs=max(1, len(self.placements)))
        self._nominal = elmore_delays(tree, self.model, source_resistance)

    # ------------------------------------------------------------------ #
    @classmethod
    def plan(
        cls,
        tree: ClockTree,
        tau_min: float,
        max_distance: float,
        top_k: int = 8,
        sensor_factory=SkewSensor,
        model: Optional[WireModel] = None,
        source_resistance: float = 100.0,
    ) -> "ClockTestingScheme":
        """Select critical pairs and place one sensor on each.

        ``tau_min`` is the calibrated sensitivity of the sensor (obtain it
        from :func:`repro.core.sensitivity.extract_tau_min` for the load
        the sensor sees).
        """
        pairs = select_critical_pairs(
            tree, max_distance=max_distance, top_k=top_k,
            model=model, source_resistance=source_resistance,
        )
        placements = [
            SensorPlacement(pair=p, sensor=sensor_factory(), tau_min=tau_min)
            for p in pairs
        ]
        return cls(tree, placements, model=model, source_resistance=source_resistance)

    # ------------------------------------------------------------------ #
    def observe(
        self,
        tree_state: Optional[ClockTree] = None,
        electrical: bool = False,
        slew: float = ns(0.2),
        threshold: float = VTH_INTERPRET,
        options: Optional[TransientOptions] = None,
    ) -> List[PairObservation]:
        """Evaluate every monitored pair under ``tree_state`` and update
        the indicators.

        ``tree_state`` defaults to the design (fault-free) tree; pass the
        output of a tree-fault ``apply`` to model a defect.
        """
        state = tree_state or self.tree
        delays = elmore_delays(state, self.model, self.source_resistance)
        observations: List[PairObservation] = []
        for placement in self.placements:
            pair = placement.pair
            skew = delays[pair.sink_b] - delays[pair.sink_a]
            if electrical:
                response = simulate_sensor(
                    placement.sensor, skew=skew, slew1=slew, slew2=slew,
                    threshold=threshold, options=options,
                )
                code = response.code
            else:
                code = self._behavioural_code(skew, placement.tau_min)
            placement.indicator.observe_code(code)
            observations.append(
                PairObservation(placement=placement, skew=skew, code=code)
            )
        return observations

    @staticmethod
    def _behavioural_code(skew: float, tau_min: float) -> Tuple[int, int]:
        """Calibrated-threshold model of the sensor response."""
        if skew > tau_min:
            return (0, 1)
        if skew < -tau_min:
            return (1, 0)
        return (0, 0)

    # ------------------------------------------------------------------ #
    def scan_out(self) -> List[int]:
        """Off-line readout: capture and shift the scan chain."""
        return self.scan_path.read()

    def online_alarm(self) -> bool:
        """On-line readout: compress indicator states through the two-rail
        checker; True when an error is signalled."""
        if not self.placements:
            return False
        pairs = [
            TwoRailChecker.encode_sensor_code(
                placement.indicator.history[-1]
                if placement.indicator.history
                else (1, 1)
            )
            for placement in self.placements
        ]
        return self.checker.alarm(pairs)

    def flagged_pairs(self) -> List[str]:
        """Names of monitored pairs whose indicators latched."""
        return self.scan_path.flagged()

    def reset(self) -> None:
        """Clear all indicators (between test sessions)."""
        self.scan_path.reset_all()

    def nominal_skews(self) -> Dict[str, float]:
        """Design skew per monitored pair name."""
        return {
            p.indicator.name: self._nominal[p.pair.sink_b]
            - self._nominal[p.pair.sink_a]
            for p in self.placements
        }
