"""Sec.-3 testability analysis of the sensing circuit.

The key constraint, stated by the paper, is that *the clock signals cannot
be controlled independently from each other*: the only available stimulus is
the fault-free clock pair itself.  A fault is **logically detected** when,
under that stimulus, the threshold-interpreted ``(y1, y2)`` samples differ
from the fault-free circuit in at least one clock phase.  Faults that escape
are re-examined with the **IDDQ** observable (quiescent supply current), and
the undetected stuck-opens are additionally checked for the paper's claim
that they *do not mask* the detection of genuine skews.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analog.engine import TransientOptions, TransientResult, transient
from repro.circuit.netlist import Netlist
from repro.core.sensing import SkewSensor
from repro.devices.sources import clock_pair
from repro.faults.iddq import DEFAULT_IDDQ_THRESHOLD, quiescent_current
from repro.faults.models import Fault
from repro.faults.universe import FaultUniverse, enumerate_faults
from repro.units import VTH_INTERPRET, ns


@dataclass(frozen=True)
class ClockStimulus:
    """The fault-free clock stimulus and its derived observation plan."""

    period: float = ns(20.0)
    slew: float = ns(0.2)
    settle: float = ns(2.0)
    cycles: int = 2
    skew: float = 0.0

    @property
    def t_stop(self) -> float:
        """End of the simulated interval."""
        return self.settle + self.cycles * self.period

    def phase_boundaries(self) -> List[float]:
        """Times separating clock phases (start of each half-period)."""
        bounds = [self.settle]
        for k in range(self.cycles * 2):
            bounds.append(self.settle + (k + 1) * self.period / 2.0)
        return bounds

    def sample_times(self) -> List[float]:
        """One observation instant per clock phase (at 80 % of the phase,
        after the error indication of that phase is established)."""
        bounds = self.phase_boundaries()
        return [t0 + 0.8 * (t1 - t0) for t0, t1 in zip(bounds[:-1], bounds[1:])]

    def quiescent_windows(self) -> List[Tuple[float, float]]:
        """Last 25 % of each phase: settled, next edge not begun."""
        bounds = self.phase_boundaries()
        return [
            (t1 - 0.25 * (t1 - t0), t1) for t0, t1 in zip(bounds[:-1], bounds[1:])
        ]


@dataclass
class FaultVerdict:
    """Outcome of simulating one fault."""

    fault: Fault
    detected_logic: bool
    detected_iddq: bool
    iddq_current: float
    codes: List[Tuple[int, int]]
    masks_skew: Optional[bool] = None

    @property
    def detected(self) -> bool:
        """Detected by either observable."""
        return self.detected_logic or self.detected_iddq


@dataclass
class TestabilityReport:
    """Aggregate of all fault verdicts, grouped by fault kind."""

    verdicts: Dict[str, List[FaultVerdict]] = field(default_factory=dict)
    reference_codes: List[Tuple[int, int]] = field(default_factory=list)

    def coverage(self, kind: str, with_iddq: bool = False) -> float:
        """Detected fraction for one fault kind."""
        group = self.verdicts.get(kind, [])
        if not group:
            return float("nan")
        hits = sum(
            1 for v in group if (v.detected if with_iddq else v.detected_logic)
        )
        return hits / len(group)

    def undetected(self, kind: str, with_iddq: bool = False) -> List[FaultVerdict]:
        """Verdicts that escaped detection for one fault kind."""
        return [
            v
            for v in self.verdicts.get(kind, [])
            if not (v.detected if with_iddq else v.detected_logic)
        ]

    def summary_rows(self) -> List[Tuple[str, int, float, float]]:
        """``(kind, universe size, logic coverage, coverage with IDDQ)``."""
        return [
            (kind, len(group), self.coverage(kind), self.coverage(kind, True))
            for kind, group in self.verdicts.items()
        ]


def _simulate(
    netlist: Netlist,
    stimulus: ClockStimulus,
    options: Optional[TransientOptions],
    with_currents: bool,
    initial: Optional[Dict[str, float]] = None,
) -> TransientResult:
    if initial is None:
        initial = {"y1": 5.0, "y2": 5.0, "nA": 5.0, "nB": 5.0,
                   "pA": 0.0, "pB": 0.0}
    return transient(
        netlist,
        t_stop=stimulus.t_stop,
        record=["y1", "y2"],
        record_currents=["vdd"] if with_currents else None,
        # Clocks start low -> pull-ups on -> outputs high (steers the
        # operating point to the idle state, not a metastable one).
        initial=initial,
        options=options,
    )


def _codes(
    result: TransientResult, stimulus: ClockStimulus, threshold: float
) -> List[Tuple[int, int]]:
    y1 = result.wave("y1")
    y2 = result.wave("y2")
    return [
        (1 if y1.at(t) > threshold else 0, 1 if y2.at(t) > threshold else 0)
        for t in stimulus.sample_times()
    ]


def build_clocked_sensor(
    sensor: SkewSensor, stimulus: ClockStimulus
) -> Netlist:
    """The sensor netlist with the stimulus clock pair attached."""
    phi1, phi2 = clock_pair(
        period=stimulus.period,
        slew1=stimulus.slew,
        slew2=stimulus.slew,
        skew=stimulus.skew,
        delay=stimulus.settle,
        vdd=sensor.vdd,
    )
    return sensor.build(phi1=phi1, phi2=phi2)


def analyze_sensor_testability(
    sensor: Optional[SkewSensor] = None,
    stimulus: Optional[ClockStimulus] = None,
    universe: Optional[FaultUniverse] = None,
    threshold: float = VTH_INTERPRET,
    iddq_threshold: float = DEFAULT_IDDQ_THRESHOLD,
    check_skew_masking: bool = True,
    masking_skew: float = ns(1.0),
    options: Optional[TransientOptions] = None,
) -> TestabilityReport:
    """Run the full Sec.-3 analysis.

    Parameters
    ----------
    sensor:
        Sensor under analysis; defaults to the nominal one.
    stimulus:
        Fault-free clock stimulus; defaults to two 20 ns cycles.
    universe:
        Fault universe; defaults to :func:`enumerate_faults` on the sensor
        netlist (parasitic-capacitor-only nodes excluded implicitly since
        faults target transistors and circuit nodes).
    check_skew_masking:
        For stuck-open faults that escape logic detection, also simulate a
        genuine skew of ``masking_skew`` and record whether the faulty
        sensor still flags it (the paper's claim: it does).
    """
    sensor = sensor or SkewSensor()
    stimulus = stimulus or ClockStimulus()
    golden_netlist = build_clocked_sensor(sensor, stimulus)
    if universe is None:
        universe = enumerate_faults(golden_netlist)

    golden = _simulate(golden_netlist, stimulus, options, with_currents=False)
    reference = _codes(golden, stimulus, threshold)

    report = TestabilityReport(reference_codes=reference)
    for kind in ("stuck-at", "stuck-open", "stuck-on", "bridging"):
        report.verdicts[kind] = []
        for fault in universe.by_kind(kind):
            verdict = _judge_fault(
                fault, golden_netlist, stimulus, reference,
                threshold, iddq_threshold, options,
            )
            if (
                check_skew_masking
                and kind == "stuck-open"
                and not verdict.detected_logic
            ):
                verdict.masks_skew = _masks_skew(
                    fault, sensor, stimulus, masking_skew, threshold, options
                )
            report.verdicts[kind].append(verdict)
    return report


def _judge_fault(
    fault: Fault,
    golden_netlist: Netlist,
    stimulus: ClockStimulus,
    reference: Sequence[Tuple[int, int]],
    threshold: float,
    iddq_threshold: float,
    options: Optional[TransientOptions],
) -> FaultVerdict:
    faulty = fault.inject(golden_netlist)
    result = _simulate(faulty, stimulus, options, with_currents=True)
    codes = _codes(result, stimulus, threshold)
    detected_logic = codes != list(reference)
    iddq = quiescent_current(result, stimulus.quiescent_windows())
    return FaultVerdict(
        fault=fault,
        detected_logic=detected_logic,
        detected_iddq=iddq > iddq_threshold,
        iddq_current=iddq,
        codes=codes,
    )


def _masks_skew(
    fault: Fault,
    sensor: SkewSensor,
    stimulus: ClockStimulus,
    skew: float,
    threshold: float,
    options: Optional[TransientOptions],
) -> bool:
    """True when the fault *prevents* detection of a genuine skew."""
    skewed = ClockStimulus(
        period=stimulus.period,
        slew=stimulus.slew,
        settle=stimulus.settle,
        cycles=1,
        skew=skew,
    )
    netlist = fault.inject(build_clocked_sensor(sensor, skewed))
    result = _simulate(netlist, skewed, options, with_currents=False)
    y2 = result.wave("y2")
    edge = skewed.settle
    fall = skewed.settle + skewed.period / 2.0 - skewed.slew
    vmin_late = y2.window_min(edge, fall)
    return not vmin_late > threshold
