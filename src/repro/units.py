"""Unit helpers and physical constants.

All internal quantities in this library are plain SI floats (volts, seconds,
farads, amperes, metres, ohms).  These helpers exist so that call sites read
like the paper: ``fF(80)``, ``ns(0.4)``, ``um(1.2)``.
"""

from __future__ import annotations

#: Supply voltage used throughout the paper's evaluation (5 V CMOS, 1.2 um).
VDD = 5.0

#: Logic interpretation threshold used by the paper: a gate with logic
#: threshold VDD/2, derated by a 10 % worst-case parameter variation,
#: giving 2.75 V (Sec. 2).
VTH_INTERPRET = 0.5 * VDD * 1.1


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * 1e-9


def ps(value: float) -> float:
    """Picoseconds to seconds."""
    return value * 1e-12


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * 1e-6


def fF(value: float) -> float:  # noqa: N802 - deliberate SI capitalisation
    """Femtofarads to farads."""
    return value * 1e-15


def pF(value: float) -> float:  # noqa: N802
    """Picofarads to farads."""
    return value * 1e-12


def um(value: float) -> float:
    """Micrometres to metres."""
    return value * 1e-6


def mm(value: float) -> float:
    """Millimetres to metres."""
    return value * 1e-3


def ohm(value: float) -> float:
    """Ohms (identity; for symmetry at call sites)."""
    return float(value)


def kohm(value: float) -> float:
    """Kiloohms to ohms."""
    return value * 1e3


def mA(value: float) -> float:  # noqa: N802
    """Milliamperes to amperes."""
    return value * 1e-3


def uA(value: float) -> float:  # noqa: N802
    """Microamperes to amperes."""
    return value * 1e-6


def to_ns(seconds: float) -> float:
    """Seconds to nanoseconds (for reporting)."""
    return seconds * 1e9


def to_fF(farads: float) -> float:  # noqa: N802
    """Farads to femtofarads (for reporting)."""
    return farads * 1e15
