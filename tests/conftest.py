"""Shared fixtures.

Electrical simulations dominate test runtime, so the expensive reference
runs (no-skew response, skewed response, testability subsets) are
session-scoped and shared across test modules.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analog.engine import TransientOptions
from repro.core.response import simulate_sensor
from repro.core.sensing import SkewSensor
from repro.devices.process import nominal_process
from repro.units import fF, ns


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_cache(tmp_path_factory):
    """Point the runtime result cache at a session-private directory.

    Keeps the suite from reading or writing ``~/.cache/repro`` (hermetic
    runs, no cross-session replay masking a regression) while still
    letting repeated evaluations *within* the session share results.
    """
    from repro.runtime import reset_cache

    root = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    reset_cache()
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
    reset_cache()


@pytest.fixture(autouse=True)
def _fresh_fault_injector():
    """Rebuild the fault injector from the environment for every test.

    Chaos CI runs the suite with ``REPRO_FAULTS`` set; resetting the
    per-site decision streams here makes each test's fire pattern a
    function of ``(seed, site)`` alone, never of how many decisions
    earlier tests happened to draw - the determinism the chaos-smoke
    job asserts (same seed twice -> same outcomes).  Costs nothing when
    chaos is off (the null injector is rebuilt from an empty env).
    """
    from repro.runtime.faults import reset_injector, set_injector

    reset_injector()
    yield
    set_injector(None)


@pytest.fixture
def fresh_cache(monkeypatch, tmp_path):
    """A fresh, empty process-wide cache rooted at this test's tmp dir."""
    from repro.runtime import reset_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    reset_cache()
    yield tmp_path
    reset_cache()


@pytest.fixture(scope="session")
def process():
    """Nominal 1.2 um process corner."""
    return nominal_process()


@pytest.fixture(scope="session")
def fast_options():
    """Transient options tuned for test speed (still accurate to ~10 mV)."""
    return TransientOptions(dt_max=200e-12, reltol=5e-3)


@pytest.fixture(scope="session")
def sensor():
    """Default sensor with the paper's middle load (160 fF)."""
    return SkewSensor(load1=fF(160), load2=fF(160))


@pytest.fixture(scope="session")
def no_skew_response(sensor, fast_options):
    """Reference no-skew simulation (Fig. 2 situation)."""
    return simulate_sensor(sensor, skew=0.0, options=fast_options)


@pytest.fixture(scope="session")
def skewed_response(sensor, fast_options):
    """Reference 1 ns skew simulation (Fig. 3 situation)."""
    return simulate_sensor(sensor, skew=ns(1.0), options=fast_options)


@pytest.fixture
def rng():
    """Deterministic RNG for reproducible randomised tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def synthetic_kind():
    """Register a cheap ``synthetic`` campaign kind for service tests.

    Evaluation is a stub (no transients), so scheduler/API behaviour -
    ordering, cancellation, resume, quotas - can be exercised in
    milliseconds.  Spec keys: ``jobs`` (count), ``sleep_s`` (per-job
    delay, for cancellation-mid-campaign tests), ``tag`` (appended to
    the returned run log when the campaign folds, so tests can assert
    execution order), ``fail_at`` (job index whose evaluation raises).
    Yields the run log; unregisters the kind on teardown.
    """
    import time as _time

    from repro.runtime import JobResult, SensorJob
    from repro.service import specs

    runs = []

    def build(spec):
        jobs = [
            SensorJob(skew=(k + 1) * 1e-12)
            for k in range(int(spec["jobs"]))
        ]
        sleep_s = float(spec["sleep_s"])
        fail_at = spec["fail_at"]

        def evaluate(job):
            if sleep_s:
                _time.sleep(sleep_s)
            if fail_at is not None and job.skew == (fail_at + 1) * 1e-12:
                raise ValueError("synthetic failure")
            return JobResult(
                skew=job.skew, vmin_y1=1.0, vmin_y2=2.0, code=(0, 0),
                steps=1,
            )

        def fold(campaign):
            runs.append(spec["tag"])
            return {
                "kind": "synthetic",
                "tag": spec["tag"],
                "n": len(campaign.results),
                "resumed": sum(
                    1 for r in campaign.results
                    if getattr(r, "resumed", False)
                ),
            }

        return specs.CampaignPlan(
            jobs=jobs, fold=fold,
            executor=specs._executor_kwargs(spec), evaluate=evaluate,
        )

    specs.register_kind(
        "synthetic",
        {"jobs": 4, "sleep_s": 0.0, "tag": "", "fail_at": None},
        build,
    )
    yield runs
    specs._KIND_BUILDERS.pop("synthetic", None)
    specs._KIND_DEFAULTS.pop("synthetic", None)
