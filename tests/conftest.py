"""Shared fixtures.

Electrical simulations dominate test runtime, so the expensive reference
runs (no-skew response, skewed response, testability subsets) are
session-scoped and shared across test modules.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analog.engine import TransientOptions
from repro.core.response import simulate_sensor
from repro.core.sensing import SkewSensor
from repro.devices.process import nominal_process
from repro.units import fF, ns


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_cache(tmp_path_factory):
    """Point the runtime result cache at a session-private directory.

    Keeps the suite from reading or writing ``~/.cache/repro`` (hermetic
    runs, no cross-session replay masking a regression) while still
    letting repeated evaluations *within* the session share results.
    """
    from repro.runtime import reset_cache

    root = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    reset_cache()
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
    reset_cache()


@pytest.fixture
def fresh_cache(monkeypatch, tmp_path):
    """A fresh, empty process-wide cache rooted at this test's tmp dir."""
    from repro.runtime import reset_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    reset_cache()
    yield tmp_path
    reset_cache()


@pytest.fixture(scope="session")
def process():
    """Nominal 1.2 um process corner."""
    return nominal_process()


@pytest.fixture(scope="session")
def fast_options():
    """Transient options tuned for test speed (still accurate to ~10 mV)."""
    return TransientOptions(dt_max=200e-12, reltol=5e-3)


@pytest.fixture(scope="session")
def sensor():
    """Default sensor with the paper's middle load (160 fF)."""
    return SkewSensor(load1=fF(160), load2=fF(160))


@pytest.fixture(scope="session")
def no_skew_response(sensor, fast_options):
    """Reference no-skew simulation (Fig. 2 situation)."""
    return simulate_sensor(sensor, skew=0.0, options=fast_options)


@pytest.fixture(scope="session")
def skewed_response(sensor, fast_options):
    """Reference 1 ns skew simulation (Fig. 3 situation)."""
    return simulate_sensor(sensor, skew=ns(1.0), options=fast_options)


@pytest.fixture
def rng():
    """Deterministic RNG for reproducible randomised tests."""
    return np.random.default_rng(12345)
