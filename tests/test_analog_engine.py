"""Analog engine: compilation, DC operating point, transient accuracy."""

import numpy as np
import pytest

from repro.analog.compile import CompiledCircuit
from repro.analog.dcop import dc_operating_point
from repro.analog.engine import TransientOptions, transient
from repro.circuit.netlist import Netlist
from repro.devices.mosfet import MosfetType
from repro.devices.process import nominal_process
from repro.devices.sources import PWLSource
from repro.units import ns


def _divider(r1=1000.0, r2=3000.0):
    net = Netlist(name="divider")
    net.drive_dc("vdd", 4.0)
    net.add_resistor("r1", "vdd", "mid", r1)
    net.add_resistor("r2", "mid", "0", r2)
    return net


def _inverter(load=100e-15):
    p = nominal_process()
    net = Netlist(name="inv")
    net.drive_dc("vdd", 5.0)
    net.add_mosfet("mp", "out", "in", "vdd", MosfetType.PMOS, 4e-6, 1.2e-6, p.pmos)
    net.add_mosfet("mn", "out", "in", "0", MosfetType.NMOS, 2e-6, 1.2e-6, p.nmos)
    net.add_capacitor("cl", "out", "0", load)
    return net


# --------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------- #

def test_compile_orders_free_nodes_first():
    c = CompiledCircuit.compile(_divider())
    assert c.n_free == 1
    assert c.node_index["mid"] == 0
    assert c.n_total == 3


def test_conductance_stamp_symmetry():
    c = CompiledCircuit.compile(_divider())
    assert np.allclose(c.G, c.G.T)
    # Row sums vanish apart from the tiny conditioning gmin terms.
    assert np.all(np.abs(c.G.sum(axis=1)) < 1e-6)


def test_capacitance_stamp():
    c = CompiledCircuit.compile(_inverter(load=100e-15))
    out = c.node_index["out"]
    gnd = c.node_index["0"]
    assert c.C[out, out] >= 100e-15
    assert c.C[out, gnd] <= -100e-15


def test_device_currents_satisfy_kcl():
    """Total static current summed over all nodes is zero (charge
    conservation of the stamping)."""
    c = CompiledCircuit.compile(_inverter())
    v = c.source_voltages(0.0)
    v[c.node_index["in"]] = 2.5
    v[c.node_index["out"]] = 1.7
    f, _ = c.device_currents(v)
    assert abs(f.sum()) < 1e-12


def test_jacobian_matches_finite_difference():
    c = CompiledCircuit.compile(_inverter())
    v = c.source_voltages(0.0)
    v[c.node_index["in"]] = 2.2
    v[c.node_index["out"]] = 3.1
    f0, j = c.device_currents(v)
    h = 1e-7
    for k in range(c.n_total):
        vp = v.copy()
        vp[k] += h
        fp, _ = c.device_currents(vp, with_jacobian=False)
        assert np.allclose((fp - f0) / h, j[:, k], rtol=1e-3, atol=1e-9)


def test_stuck_open_removes_device():
    net = _inverter()
    net.find_mosfet("mn").stuck_open = True
    c = CompiledCircuit.compile(net)
    assert c.m_d.size == 1  # only the PMOS left


def test_stuck_on_remaps_gate():
    net = _inverter()
    net.find_mosfet("mn").stuck_on = True
    c = CompiledCircuit.compile(net)
    # NMOS gate must point at the vdd node now.
    nmos_gate = c.m_g[c.m_sign > 0]
    assert nmos_gate[0] == c.node_index["vdd"]


# --------------------------------------------------------------------- #
# DC operating point
# --------------------------------------------------------------------- #

def test_dcop_resistive_divider():
    c = CompiledCircuit.compile(_divider())
    v = dc_operating_point(c)
    assert v[c.node_index["mid"]] == pytest.approx(3.0, abs=1e-3)


def test_dcop_inverter_rails():
    net = _inverter()
    net.drive_dc("in", 0.0)
    c = CompiledCircuit.compile(net)
    v = dc_operating_point(c)
    assert v[c.node_index["out"]] == pytest.approx(5.0, abs=0.01)

    net2 = _inverter()
    net2.drive_dc("in", 5.0)
    c2 = CompiledCircuit.compile(net2)
    v2 = dc_operating_point(c2)
    assert v2[c2.node_index["out"]] == pytest.approx(0.0, abs=0.01)


def test_dcop_inverter_midpoint_between_rails():
    net = _inverter()
    net.drive_dc("in", 2.5)
    c = CompiledCircuit.compile(net)
    v = dc_operating_point(c)
    assert 0.5 < v[c.node_index["out"]] < 4.5


def test_dcop_honours_initial_guess_for_bistable():
    """Cross-coupled inverter pair settles to the state nearest the
    provided initial condition."""
    p = nominal_process()
    net = Netlist(name="latch")
    net.drive_dc("vdd", 5.0)
    for a, b in (("x", "y"), ("y", "x")):
        net.add_mosfet(f"mp{a}", a, b, "vdd", MosfetType.PMOS, 4e-6, 1.2e-6, p.pmos)
        net.add_mosfet(f"mn{a}", a, b, "0", MosfetType.NMOS, 2e-6, 1.2e-6, p.nmos)
    net.add_capacitor("cx", "x", "0", 10e-15)
    net.add_capacitor("cy", "y", "0", 10e-15)
    c = CompiledCircuit.compile(net)
    v = dc_operating_point(c, initial={"x": 5.0, "y": 0.0})
    assert v[c.node_index["x"]] > 4.0
    assert v[c.node_index["y"]] < 1.0


# --------------------------------------------------------------------- #
# Transient
# --------------------------------------------------------------------- #

def test_rc_step_response_matches_analytic():
    """R into C driven by a fast step: v(t) = V (1 - exp(-t/RC))."""
    net = Netlist(name="rc")
    r, cap = 10e3, 100e-15  # tau = 1 ns
    net.drive("in", PWLSource([0.0, 1e-12], [0.0, 1.0]))
    net.add_resistor("r", "in", "out", r)
    net.add_capacitor("c", "out", "0", cap)
    result = transient(net, t_stop=ns(5), record=["out"])
    wave = result.wave("out")
    tau = r * cap
    for t in (0.5e-9, 1e-9, 2e-9, 4e-9):
        expected = 1.0 - np.exp(-t / tau)
        assert wave.at(t) == pytest.approx(expected, abs=0.01)


def test_inverter_transient_switches():
    net = _inverter()
    net.drive("in", PWLSource([0.0, 2e-9, 2.1e-9], [0.0, 0.0, 5.0]))
    result = transient(net, t_stop=ns(6), record=["out", "in"])
    out = result.wave("out")
    assert out.at(ns(1.5)) == pytest.approx(5.0, abs=0.05)
    assert out.at(ns(5.5)) == pytest.approx(0.0, abs=0.05)
    # Falling crossing of mid-rail happens shortly after the input edge.
    t_cross = out.first_crossing(2.5, rising=False)
    assert ns(2.0) < t_cross < ns(3.0)


def test_transient_lands_on_breakpoints():
    net = _inverter()
    net.drive("in", PWLSource([0.0, 2e-9, 2.1e-9], [0.0, 0.0, 5.0]))
    result = transient(net, t_stop=ns(4), record=["in"])
    assert any(np.isclose(result.times, 2e-9, atol=1e-15))
    assert any(np.isclose(result.times, 2.1e-9, atol=1e-15))


def test_transient_records_requested_nodes_only():
    net = _inverter()
    net.drive_dc("in", 0.0)
    result = transient(net, t_stop=ns(1), record=["out"])
    assert set(result.voltages) == {"out"}
    with pytest.raises(KeyError):
        result.wave("in")


def test_transient_rejects_unknown_record_node():
    net = _inverter()
    net.drive_dc("in", 0.0)
    with pytest.raises(KeyError):
        transient(net, t_stop=ns(1), record=["nope"])


def test_source_current_of_quiescent_inverter_is_tiny():
    net = _inverter()
    net.drive_dc("in", 0.0)
    result = transient(
        net, t_stop=ns(2), record=["out"], record_currents=["vdd"]
    )
    i = result.source_current("vdd")
    assert abs(i.final_value()) < 1e-6


def test_source_current_sees_switching_charge():
    net = _inverter()
    net.drive("in", PWLSource([0.0, 1e-9, 1.1e-9, 3e-9, 3.1e-9], [5, 5, 0, 0, 5]))
    result = transient(
        net, t_stop=ns(5), record=["out"], record_currents=["vdd"]
    )
    i = result.source_current("vdd")
    # Rising output (after input falls at 1 ns) pulls charge from vdd.
    assert i.window_max(ns(1.0), ns(2.0)) > 1e-5


def test_custom_options_respected():
    net = _divider()
    options = TransientOptions(dt_max=50e-12)
    result = transient(net, t_stop=ns(1), options=options)
    assert np.max(np.diff(result.times)) <= 50e-12 + 1e-18


def test_delivered_charge_of_switching_inverter():
    """Charging the 100 fF load through the PMOS draws ~ C * VDD from the
    supply (plus parasitics)."""
    net = _inverter(load=100e-15)
    net.drive("in", PWLSource([0.0, 1e-9, 1.1e-9], [5.0, 5.0, 0.0]))
    result = transient(
        net, t_stop=ns(4), record=["out"], record_currents=["vdd"]
    )
    charge = result.delivered_charge("vdd", 0.9e-9, 4e-9)
    expected = 100e-15 * 5.0
    assert charge == pytest.approx(expected, rel=0.15)


def test_delivered_energy_scales_with_vdd():
    net = _inverter(load=100e-15)
    net.drive("in", PWLSource([0.0, 1e-9, 1.1e-9], [5.0, 5.0, 0.0]))
    result = transient(
        net, t_stop=ns(4), record=["out"], record_currents=["vdd"]
    )
    charge = result.delivered_charge("vdd", 0.9e-9, 4e-9)
    energy = result.delivered_energy("vdd", 5.0, 0.9e-9, 4e-9)
    assert energy == pytest.approx(5.0 * charge)
    # CV^2 scale: 100 fF * 25 V^2 = 2.5 pJ.
    assert energy == pytest.approx(2.5e-12, rel=0.2)


def test_sensor_per_cycle_energy_is_small():
    """DFT cost: one sensor cycle costs a few pJ - negligible next to the
    clock tree it monitors."""
    from repro.core.response import simulate_sensor
    from repro.core.sensing import SkewSensor
    from repro.units import fF

    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    response = simulate_sensor(
        sensor, skew=0.0, record_currents=True,
        options=TransientOptions(dt_max=200e-12, reltol=5e-3),
    )
    energy = response.result.delivered_energy("vdd", 5.0)
    assert 0.1e-12 < energy < 50e-12


def test_transient_options_validation():
    with pytest.raises(ValueError):
        TransientOptions(dt_max=1e-12, dt_start=1e-11)
    with pytest.raises(ValueError):
        TransientOptions(dt_min=0.0)
    with pytest.raises(ValueError):
        TransientOptions(reltol=-1.0)
    with pytest.raises(ValueError):
        TransientOptions(max_newton=1)
    with pytest.raises(ValueError):
        TransientOptions(lte_reject=0.5)


def test_step_underflow_raises_convergence_error():
    """A hopeless tolerance setup surfaces as ConvergenceError rather than
    hanging or silently returning garbage."""
    from repro.analog.dcop import ConvergenceError

    net = _inverter()
    net.drive("in", PWLSource([0.0, 1e-9, 1.1e-9], [0.0, 0.0, 5.0]))
    options = TransientOptions(
        dt_min=1e-12, dt_start=1e-12, dt_max=2e-12,
        max_newton=2, vntol=1e-15, lte_reject=1.0001,
    )
    with pytest.raises(ConvergenceError):
        transient(net, t_stop=ns(4), record=["out"], options=options)


def test_record_currents_requires_driven_node():
    net = _inverter()
    net.drive_dc("in", 0.0)
    with pytest.raises(KeyError):
        transient(net, t_stop=ns(1), record_currents=["out"])


def test_compiled_circuit_reuse():
    """Passing a pre-compiled circuit skips recompilation and matches."""
    from repro.analog.compile import CompiledCircuit

    net = _inverter()
    net.drive("in", PWLSource([0.0, 1e-9, 1.1e-9], [0.0, 0.0, 5.0]))
    compiled = CompiledCircuit.compile(net)
    a = transient(net, t_stop=ns(3), record=["out"])
    b = transient(net, t_stop=ns(3), record=["out"], compiled=compiled)
    assert a.wave("out").at(ns(2.5)) == pytest.approx(
        b.wave("out").at(ns(2.5)), abs=1e-6
    )
