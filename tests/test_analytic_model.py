"""First-order analytic sensitivity model vs the simulator."""

import pytest

from repro.analog.engine import TransientOptions
from repro.core.model import (
    effective_output_capacitance,
    estimate_fall_current,
    estimate_tau_min,
)
from repro.core.sensing import SensorSizing
from repro.core.sensitivity import extract_tau_min
from repro.units import fF, ns, um

FAST = TransientOptions(dt_max=200e-12, reltol=5e-3)


def test_effective_capacitance_exceeds_external_load():
    assert effective_output_capacitance(fF(160)) > fF(160)


def test_effective_capacitance_grows_with_width():
    small = effective_output_capacitance(fF(160), SensorSizing(w_n=um(1.2)))
    large = effective_output_capacitance(fF(160), SensorSizing(w_n=um(4.8)))
    assert large > small


def test_fall_current_scales_with_width():
    narrow = estimate_fall_current(SensorSizing(w_n=um(1.2)))
    wide = estimate_fall_current(SensorSizing(w_n=um(4.8)))
    assert wide == pytest.approx(4 * narrow)


def test_estimate_rejects_threshold_below_vtn():
    with pytest.raises(ValueError):
        estimate_tau_min(fF(160), threshold=0.5)


@pytest.mark.parametrize("load_ff", [80, 160, 240])
def test_model_matches_simulation_across_loads(load_ff):
    """The closed form predicts the simulated tau_min within ~15 %."""
    est = estimate_tau_min(fF(load_ff))
    meas = extract_tau_min(fF(load_ff), tolerance=ns(0.004), options=FAST)
    assert est == pytest.approx(meas, rel=0.15)


@pytest.mark.parametrize("w_um", [1.2, 3.0, 8.0])
def test_model_matches_simulation_across_sizings(w_um):
    sizing = SensorSizing(w_n=um(w_um), w_p=um(2 * w_um))
    est = estimate_tau_min(fF(160), sizing=sizing)
    meas = extract_tau_min(
        fF(160), sizing=sizing, tolerance=ns(0.004), options=FAST
    )
    assert est == pytest.approx(meas, rel=0.15)


def test_model_threshold_trend_matches_ablation_direction():
    """Lower Vth -> smaller tau_min (finer sensitivity): the model's Vth
    direction agrees with the measured threshold ablation."""
    low = estimate_tau_min(fF(160), threshold=2.2)
    high = estimate_tau_min(fF(160), threshold=3.3)
    assert low < high
