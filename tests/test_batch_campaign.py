"""Batch backend through the campaign executor: dispatch, fallback, cache."""

from __future__ import annotations

import pytest

from repro.analog.engine import TransientOptions
from repro.batch.dispatch import (
    DEFAULT_BATCH_SIZE,
    batch_signature,
    group_batches,
    resolve_batch_size,
)
from repro.errors import SimulationError
from repro.runtime import ResultCache, SensorJob, Telemetry, run_campaign
from repro.units import fF, ns

FAST = TransientOptions(dt_max=200e-12, reltol=5e-3)
SLOWER = TransientOptions(dt_max=100e-12, reltol=5e-3)


def jobs_for(*skews_ns, options=FAST):
    return [
        SensorJob(skew=ns(t), load1=fF(160), load2=fF(160), options=options)
        for t in skews_ns
    ]


def _items(jobs):
    """Wrap jobs in the executor's work-item tuples."""
    return [(k, job, 1, None) for k, job in enumerate(jobs)]


# --------------------------------------------------------------------- #
# End-to-end: batched evaluation feeds the normal campaign plumbing.
# --------------------------------------------------------------------- #

def test_batch_campaign_end_to_end(tmp_path):
    jobs = jobs_for(0.0, 0.15, 0.4)
    cache = ResultCache(disk_dir=tmp_path)
    cold = Telemetry()
    first = run_campaign(
        jobs, backend="batch", max_workers=1, cache=cache, telemetry=cold
    )
    assert cold.batched_samples == len(jobs)
    assert cold.batch_fallbacks == 0
    assert cold.cache_misses == len(jobs)
    assert [r.skew for r in first] == [j.skew for j in jobs]
    assert all(r.steps > 0 for r in first)

    # Warm run: everything replays from the cache, nothing integrates.
    warm = Telemetry()
    second = run_campaign(
        jobs, backend="batch", max_workers=1, cache=cache, telemetry=warm
    )
    assert warm.batched_samples == 0
    assert warm.cache_hits == len(jobs)
    assert warm.steps_integrated == 0
    for got, want in zip(second, first):
        assert got.vmin_y2 == want.vmin_y2  # bit-exact replay
        assert got.code == want.code
        assert got.cached


def test_whole_stack_failure_falls_back_to_scalar(monkeypatch):
    """If the lockstep run dies, every sample takes the scalar path."""
    import repro.batch.dispatch as dispatch

    def boom(jobs):
        raise SimulationError("synthetic stack failure")

    monkeypatch.setattr(dispatch, "evaluate_jobs_batch", boom)
    jobs = jobs_for(0.1, 0.4)
    telemetry = Telemetry()
    results = run_campaign(
        jobs, backend="batch", max_workers=1, cache=None, telemetry=telemetry
    )
    assert telemetry.batch_fallbacks == len(jobs)
    assert telemetry.batched_samples == 0
    reference = run_campaign(jobs, backend="serial", cache=None)
    for got, want in zip(results, reference):
        assert got.vmin_y2 == want.vmin_y2  # scalar path: bit-exact
        assert got.code == want.code


# --------------------------------------------------------------------- #
# Executor-level validation of batch-incompatible arguments.
# --------------------------------------------------------------------- #

def test_batch_rejects_timeout():
    with pytest.raises(ValueError, match="lockstep"):
        run_campaign(jobs_for(0.1), backend="batch", timeout=1.0)


def test_batch_rejects_custom_evaluate():
    with pytest.raises(ValueError, match="evaluate"):
        run_campaign(
            jobs_for(0.1), backend="batch", evaluate=lambda job: None
        )


# --------------------------------------------------------------------- #
# Grouping and chunking.
# --------------------------------------------------------------------- #

def test_group_batches_splits_on_signature_and_size():
    mixed = jobs_for(0.0, 0.1, 0.2) + jobs_for(0.3, options=SLOWER)
    chunks = group_batches(_items(mixed), batch_size=2)
    # Three FAST jobs chunk to [2, 1]; the SLOWER job stacks alone.
    assert [len(c) for c in chunks] == [2, 1, 1]
    for chunk in chunks:
        signatures = {batch_signature(item[1]) for item in chunk}
        assert len(signatures) == 1
    # First-seen order of both groups and members is preserved.
    assert [item[0] for chunk in chunks for item in chunk] == [0, 1, 2, 3]


def test_resolve_batch_size_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH_SIZE", raising=False)
    assert resolve_batch_size(None) == DEFAULT_BATCH_SIZE
    assert resolve_batch_size(7) == 7
    monkeypatch.setenv("REPRO_BATCH_SIZE", "12")
    assert resolve_batch_size(None) == 12
    assert resolve_batch_size(3) == 3  # explicit argument wins
    monkeypatch.setenv("REPRO_BATCH_SIZE", "banana")
    with pytest.raises(ValueError):
        resolve_batch_size(None)


# --------------------------------------------------------------------- #
# Cache fingerprint covers the batch engine sources.
# --------------------------------------------------------------------- #

def test_fingerprint_covers_batch_sources():
    from repro.runtime.cache import _physics_sources

    names = {"/".join(path.parts[-2:]) for path in _physics_sources()}
    assert "batch/engine.py" in names
    assert "batch/compile.py" in names
