"""Batched circuit stacking: shapes, source plans, topology guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analog.compile import CompiledCircuit
from repro.batch.compile import BatchTopologyError, compile_batch
from repro.core.sensing import SkewSensor
from repro.devices.process import nominal_process, perturbed_process
from repro.devices.sources import clock_pair
from repro.units import fF, ns


def _netlist(load=fF(160), skew=ns(0.0), slew=ns(0.2), process=None,
             full_swing=False):
    sensor = SkewSensor(
        process=process or nominal_process(), load1=load, load2=load,
        full_swing=full_swing,
    )
    phi1, phi2 = clock_pair(
        period=ns(20.0), slew1=slew, slew2=slew, skew=skew, delay=ns(2.0),
        vdd=sensor.vdd,
    )
    return sensor.build(phi1=phi1, phi2=phi2)


def test_stacked_shapes_and_param_variation():
    rng = np.random.default_rng(11)
    netlists = [
        _netlist(process=perturbed_process(rng, 0.15), load=fF(120 + 40 * k))
        for k in range(3)
    ]
    batch = compile_batch(netlists)
    scalar = CompiledCircuit.compile(netlists[0])
    n = scalar.n_total
    assert batch.batch_size == 3
    assert batch.G.shape == (3, n, n)
    assert batch.C.shape == (3, n, n)
    assert batch.m_vt.shape[0] == 3
    # Per-sample physics actually differs across the stack.
    assert not np.allclose(batch.m_vt[0], batch.m_vt[1])
    # Loads are femtofarads; compare with a zero absolute floor.
    assert not np.allclose(batch.C[0], batch.C[2], atol=0.0)
    # Shared connectivity is genuinely shared (one copy, not per sample).
    assert batch.m_d.ndim == 1


def test_source_voltages_match_scalar_sources():
    netlists = [_netlist(skew=ns(0.0)), _netlist(skew=ns(0.1))]
    batch = compile_batch(netlists)
    compiled = [CompiledCircuit.compile(nl) for nl in netlists]
    for t in (0.0, 2.05e-9, 2.17e-9, 2.31e-9, 7.5e-9, 12.1e-9):
        stacked = batch.source_voltages(t)
        for k, circuit in enumerate(compiled):
            expected = circuit.source_voltages(t)
            assert np.array_equal(stacked[k], expected), f"t={t}"


def test_breakpoints_are_sorted_union():
    netlists = [_netlist(skew=ns(0.0)), _netlist(skew=ns(0.1))]
    batch = compile_batch(netlists)
    merged = batch.breakpoints(0.0, 20e-9)
    assert np.all(np.diff(merged) > 0)
    merged_set = set(merged)
    for netlist in netlists:
        for point in CompiledCircuit.compile(netlist).breakpoints(0.0, 20e-9):
            assert point in merged_set


def test_topology_mismatch_rejected():
    with pytest.raises(BatchTopologyError):
        compile_batch([_netlist(), _netlist(full_swing=True)])


def test_empty_batch_rejected():
    with pytest.raises(ValueError):
        compile_batch([])
