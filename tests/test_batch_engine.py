"""Batch-vs-scalar equivalence of the lockstep transient engine.

Three layers of evidence:

* a single-sample batch walks the scalar engine's grid *exactly* (same
  step-control law), so its time axis must match point for point and its
  values to within summation-reorder roundoff (~1e-15; the vectorised
  einsum/bincount accumulation orders sums differently than the scalar
  loop) - any real drift in the vectorised maths breaks this;
* multi-sample batches (where the merged breakpoint schedule forces a
  different shared grid) must agree with the scalar engine within 1 mV
  on ``Vmin`` and exactly on the interpreted codes, checked at
  grid-converged options (at coarse options the *scalar* engine carries
  ~10 mV of tolerance-blind grid error, so a tight cross-engine bar is
  only meaningful where the scalar is converged);
* white-box mask semantics: a sample whose physics is poisoned is masked
  out with a recorded reason while its batchmates integrate on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analog.engine import TransientOptions
from repro.batch.compile import compile_batch
from repro.batch.engine import batch_transient
from repro.batch.response import evaluate_jobs_batch
from repro.montecarlo.sampling import sample_population
from repro.runtime.jobs import SensorJob, evaluate_job
from repro.units import fF, ns

#: Coarse options: fast, fine for bit-identity (grid equality is exact
#: at any tolerance when B == 1).
FAST = TransientOptions(dt_max=200e-12, reltol=5e-3)

#: Grid-converged options for the B > 1 tolerance comparison (matches
#: benchmarks/_util.ACCURATE_OPTIONS).
ACCURATE = TransientOptions(dt_max=5e-12, reltol=1e-3)


def _job(skew_ns, sample=None, options=FAST, load=fF(160)):
    if sample is None:
        return SensorJob(skew=ns(skew_ns), load1=load, load2=load,
                         options=options)
    return SensorJob(
        skew=ns(skew_ns), load1=sample.load1, load2=sample.load2,
        slew1=sample.slew1, slew2=sample.slew2, process=sample.process,
        options=options,
    )


# --------------------------------------------------------------------- #
# B == 1: bit identity.
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("skew_ns", [0.0, 0.15, 0.4])
def test_single_sample_batch_matches_to_roundoff(skew_ns):
    job = _job(skew_ns)
    scalar = evaluate_job(job)
    batch = evaluate_jobs_batch([job])
    result = batch.results[0]
    assert result is not None
    assert result.vmin_y1 == pytest.approx(scalar.vmin_y1, rel=0, abs=1e-9)
    assert result.vmin_y2 == pytest.approx(scalar.vmin_y2, rel=0, abs=1e-9)
    assert result.code == scalar.code


def test_single_sample_walks_the_scalar_grid():
    from repro.core.response import simulate_sensor
    from repro.core.sensing import SkewSensor
    from repro.devices.sources import clock_pair

    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    response = simulate_sensor(sensor, skew=ns(0.15), options=FAST)
    scalar_wave = response.wave("y2")

    phi1, phi2 = clock_pair(period=ns(20.0), slew1=ns(0.2), slew2=ns(0.2),
                            skew=ns(0.15), delay=ns(2.0), vdd=sensor.vdd)
    batch = compile_batch([sensor.build(phi1=phi1, phi2=phi2)])
    result = batch_transient(
        batch, t_stop=ns(22.0), record=["y2"],
        initial=[sensor.dc_guess()], options=FAST,
    )
    assert result.ok[0]
    batch_wave = result.wave("y2", 0)
    # Same number of accepted points and the same times to within one
    # ULP of accumulation roundoff: the single-sample batch makes the
    # same step-control decisions as the scalar engine at every step.
    assert len(batch_wave.times) == len(scalar_wave.times)
    assert np.allclose(batch_wave.times, scalar_wave.times,
                       rtol=1e-12, atol=0.0)
    assert np.allclose(batch_wave.values, scalar_wave.values,
                       rtol=0, atol=1e-9)


# --------------------------------------------------------------------- #
# B > 1: tolerance equivalence on a seeded Monte Carlo slice.
# --------------------------------------------------------------------- #

@pytest.mark.slow
def test_montecarlo_slice_matches_scalar_within_1mv():
    samples = sample_population(4, fF(160), seed=2024)
    jobs = [_job(sk, s, options=ACCURATE)
            for sk in (0.0, 0.05, 0.4) for s in samples]
    scalar = [evaluate_job(job) for job in jobs]
    batch = evaluate_jobs_batch(jobs)
    assert batch.fallbacks == 0
    codes = set()
    for s, b in zip(scalar, batch.results):
        assert abs(s.vmin_y1 - b.vmin_y1) <= 1e-3
        assert abs(s.vmin_y2 - b.vmin_y2) <= 1e-3
        assert s.code == b.code
        codes.add(s.code)
    assert len(codes) >= 2, "slice must cover both code outcomes"


def test_heterogeneous_pair_matches_scalar_within_1mv():
    """Cheap non-slow guard: two different samples on one merged grid."""
    samples = sample_population(2, fF(160), seed=9)
    jobs = [_job(0.1, samples[0], options=ACCURATE),
            _job(0.0, samples[1], options=ACCURATE)]
    scalar = [evaluate_job(job) for job in jobs]
    batch = evaluate_jobs_batch(jobs)
    for s, b in zip(scalar, batch.results):
        assert abs(s.vmin_y2 - b.vmin_y2) <= 1e-3
        assert s.code == b.code


# --------------------------------------------------------------------- #
# Mask semantics.
# --------------------------------------------------------------------- #

def test_poisoned_sample_is_masked_not_fatal():
    jobs = [_job(0.0), _job(0.15)]
    from repro.batch import response as batch_response
    from repro.core.sensing import SkewSensor
    from repro.devices.sources import clock_pair

    resolved = [job.resolved() for job in jobs]
    netlists, initial = [], []
    for job in resolved:
        sensor = SkewSensor(process=job.process, sizing=job.sizing,
                            load1=job.load1, load2=job.load2)
        phi1, phi2 = clock_pair(period=job.period, slew1=job.slew1,
                                slew2=job.slew2, skew=job.skew,
                                delay=job.settle, vdd=sensor.vdd)
        netlists.append(sensor.build(phi1=phi1, phi2=phi2))
        initial.append(sensor.dc_guess())
    batch = compile_batch(netlists)
    # Poison sample 0's device cards: NaN transconductance makes the
    # Newton residual non-finite for that sample only.  (NaN *vt* would
    # not do: ``vov > 0`` is False for NaN, which just switches every
    # device off and leaves the physics finite.)
    batch.m_beta[0, :] = np.nan
    result = batch_transient(
        batch, t_stop=resolved[0].settle + resolved[0].period,
        record=list(batch_response.RECORD_NODES),
        initial=initial, options=FAST,
    )
    assert not result.ok[0]
    assert result.ok[1]
    assert 0 in result.fallback_reasons
    # The survivor still matches the scalar engine on its measurement.
    measured = batch_response._measure(result, 1, resolved[1])
    reference = evaluate_job(jobs[1])
    assert abs(measured.vmin_y2 - reference.vmin_y2) <= 2e-3
    assert measured.code == reference.code


def test_masked_sample_comes_back_as_none():
    jobs = [_job(0.0), _job(0.15)]
    import repro.batch.response as batch_response

    real_transient = batch_response.batch_transient

    def poisoned(batch, **kwargs):
        batch.m_beta[0, :] = np.nan
        return real_transient(batch, **kwargs)

    batch_response.batch_transient, saved = poisoned, batch_response.batch_transient
    try:
        evaluation = batch_response.evaluate_jobs_batch(jobs)
    finally:
        batch_response.batch_transient = saved
    assert evaluation.results[0] is None
    assert evaluation.results[1] is not None
    assert evaluation.fallbacks == 1
