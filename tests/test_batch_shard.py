"""Process-sharded batch stacks: bit-identity, crashes, shared prefixes.

The sharded dispatcher fans whole lockstep stacks over the executor's
process pool.  These tests pin down the contract that makes that safe:

* at the same resolved stack size, a sharded run is **bit-identical** to
  the single-worker batch path (``REPRO_BATCH_WORKERS=1``) - sharding
  changes where a stack integrates, never what is in it;
* a masked-out sample still takes the scalar fallback, on whichever
  shard its stack landed;
* a crashed shard worker triggers bounded whole-stack redispatch with no
  lost and no duplicated samples;
* the skew-invariant prefix is built once in the parent and *published*,
  so every shard worker warm-forks from the shared checkpoint instead of
  re-integrating it - with the cache disk tier on or off.

Plus the pure resolution logic: worker-count precedence, the auto-tune
bounds, and the service-spec plumbing.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.analog.engine import TransientOptions
from repro.batch.dispatch import (
    DEFAULT_BATCH_SIZE,
    MAX_AUTO_BATCH,
    auto_batch_size,
    resolve_batch_plan,
    resolve_batch_workers,
)
from repro.runtime import SensorJob, Telemetry, run_campaign
from repro.units import fF, ns

FAST = TransientOptions(dt_max=200e-12, reltol=5e-3)

#: Monkeypatched module state only reaches pool workers when the pool
#: forks; under spawn the child re-imports a pristine module.
FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not FORK, reason="test injects faults via fork-inherited monkeypatch"
)


def jobs_for(*skews_ns, warm_start=False):
    return [
        SensorJob(skew=ns(t), load1=fF(160), load2=fF(160), options=FAST,
                  warm_start=warm_start)
        for t in skews_ns
    ]


def fingerprint(results):
    """The bit-identity tuple of a campaign's results."""
    return [(r.skew, r.vmin_y1, r.vmin_y2, r.code, r.steps) for r in results]


# --------------------------------------------------------------------- #
# Bit-identity: sharded == single-worker at the same stack size.
# --------------------------------------------------------------------- #

def test_sharded_bit_identical_to_single_worker():
    jobs = jobs_for(0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
    single = run_campaign(
        jobs, backend="batch", batch_workers=1, chunksize=3, cache=None
    )
    telemetry = Telemetry()
    sharded = run_campaign(
        jobs, backend="batch", batch_workers=2, chunksize=3, cache=None,
        telemetry=telemetry,
    )
    assert fingerprint(sharded) == fingerprint(single)
    assert telemetry.batched_samples == len(jobs)
    assert telemetry.batch_fallbacks == 0
    assert telemetry.batch_stack_size == 3
    assert telemetry.batch_workers == 2
    assert telemetry.batch_size_auto is False
    assert "2 worker(s)" in telemetry.summary()


# --------------------------------------------------------------------- #
# Fallback contract across shards.
# --------------------------------------------------------------------- #

@needs_fork
def test_masked_sample_scalar_fallback_across_shards(monkeypatch):
    """A sample masked out on a shard still takes the scalar path."""
    import repro.batch.dispatch as dispatch

    real = dispatch.evaluate_jobs_batch

    def masking(jobs):
        evaluation = real(jobs)
        if len(evaluation.results) > 1:
            evaluation.results[1] = None  # mask one sample per stack
        return evaluation

    monkeypatch.setattr(dispatch, "evaluate_jobs_batch", masking)
    jobs = jobs_for(0.0, 0.15, 0.3, 0.45)
    single_t, sharded_t = Telemetry(), Telemetry()
    single = run_campaign(
        jobs, backend="batch", batch_workers=1, chunksize=2, cache=None,
        telemetry=single_t,
    )
    sharded = run_campaign(
        jobs, backend="batch", batch_workers=2, chunksize=2, cache=None,
        telemetry=sharded_t,
    )
    # Two stacks of two samples, one masked each: two scalar fallbacks,
    # identically counted and bit-identical on both paths.
    assert single_t.batch_fallbacks == sharded_t.batch_fallbacks == 2
    assert single_t.batched_samples == sharded_t.batched_samples == 2
    assert fingerprint(sharded) == fingerprint(single)


# --------------------------------------------------------------------- #
# Crash isolation: a dead shard worker loses nothing.
# --------------------------------------------------------------------- #

@needs_fork
def test_shard_crash_redispatches_whole_stack(monkeypatch, tmp_path):
    import repro.batch.dispatch as dispatch

    real = dispatch.evaluate_jobs_batch
    sentinel = str(tmp_path / "crashed-once")

    def crash_once(jobs):
        try:
            # Atomic create: exactly one worker dies, mid-campaign, with
            # no cleanup - the redispatched pool sees the sentinel.
            with open(sentinel, "x"):
                pass
            os._exit(23)
        except FileExistsError:
            return real(jobs)

    monkeypatch.setattr(dispatch, "evaluate_jobs_batch", crash_once)
    jobs = jobs_for(0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
    telemetry = Telemetry()
    sharded = run_campaign(
        jobs, backend="batch", batch_workers=2, chunksize=3, cache=None,
        telemetry=telemetry,
    )
    assert telemetry.worker_crashes >= 1
    # Redispatch units are whole stacks: at least one 3-sample stack.
    assert telemetry.redispatches >= 3
    # No lost, no duplicated samples - and the same bits the untouched
    # single-worker path produces.
    monkeypatch.setattr(dispatch, "evaluate_jobs_batch", real)
    single = run_campaign(
        jobs, backend="batch", batch_workers=1, chunksize=3, cache=None
    )
    assert fingerprint(sharded) == fingerprint(single)


# --------------------------------------------------------------------- #
# Cross-worker prefix sharing.
# --------------------------------------------------------------------- #

def test_prefix_published_once_warm_hits_on_every_shard(fresh_cache):
    jobs = jobs_for(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, warm_start=True)
    telemetry = Telemetry()
    sharded = run_campaign(
        jobs, backend="batch", batch_workers=2, chunksize=3, cache=None,
        telemetry=telemetry,
    )
    # One parent-side build, then every sample - on both shards - forks
    # from the published checkpoint; no shard rebuilds the prefix.
    assert telemetry.prefix_builds == 1
    assert telemetry.prefix_hits == len(jobs)
    single = run_campaign(
        jobs, backend="batch", batch_workers=1, chunksize=3, cache=None
    )
    assert fingerprint(sharded) == fingerprint(single)


def test_prefix_shared_store_survives_disabled_disk_tier(monkeypatch):
    """With the cache disk tier off, a campaign-scoped temp store still
    carries the parent-built prefix to the shard workers."""
    from repro.runtime import reset_cache

    monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
    reset_cache()
    try:
        jobs = jobs_for(0.0, 0.15, 0.3, 0.45, warm_start=True)
        telemetry = Telemetry()
        sharded = run_campaign(
            jobs, backend="batch", batch_workers=2, chunksize=2, cache=None,
            telemetry=telemetry,
        )
        assert telemetry.prefix_builds == 1
        assert telemetry.prefix_hits == len(jobs)
        single = run_campaign(
            jobs, backend="batch", batch_workers=1, chunksize=2, cache=None
        )
        assert fingerprint(sharded) == fingerprint(single)
        assert "REPRO_PREFIX_SHARED_DIR" not in os.environ  # cleaned up
    finally:
        monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
        reset_cache()


# --------------------------------------------------------------------- #
# Resolution logic (pure, no transients).
# --------------------------------------------------------------------- #

def test_resolve_batch_workers_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH_WORKERS", raising=False)
    monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
    assert resolve_batch_workers(None, None) == 3       # worker default
    assert resolve_batch_workers(None, 5) == 5          # max_workers arg
    monkeypatch.setenv("REPRO_BATCH_WORKERS", "4")
    assert resolve_batch_workers(None, 5) == 4          # env beats both
    assert resolve_batch_workers(2, 5) == 2             # arg beats env
    monkeypatch.setenv("REPRO_BATCH_WORKERS", "nope")
    with pytest.raises(ValueError, match="REPRO_BATCH_WORKERS"):
        resolve_batch_workers(None, None)


def test_auto_batch_size_bounds():
    # Fan-out: 12 jobs over 2 workers -> 6-sample stacks keep both busy.
    assert auto_batch_size(12, 2, 30, 26, mem_budget=1 << 30) == 6
    # Memory: a whole-chip-sized circuit hits the budget bound.
    tiny = auto_batch_size(1000, 1, 1378, 1374, mem_budget=1 << 20)
    assert tiny == 1
    # Cap: huge job counts never exceed MAX_AUTO_BATCH.
    assert auto_batch_size(10 ** 6, 1, 30, 26, mem_budget=1 << 40) == \
        MAX_AUTO_BATCH


def test_resolve_batch_plan_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH_SIZE", raising=False)
    assert resolve_batch_plan(17) == (17, False)        # explicit wins
    monkeypatch.setenv("REPRO_BATCH_SIZE", "9")
    assert resolve_batch_plan(None) == (9, False)       # env next
    monkeypatch.delenv("REPRO_BATCH_SIZE", raising=False)
    assert resolve_batch_plan(None) == (DEFAULT_BATCH_SIZE, False)
    items = [(k, job, 1, None) for k, job in enumerate(jobs_for(0.0, 0.1))]
    size, auto = resolve_batch_plan(None, items, workers=2)
    assert auto is True
    assert size == 1  # fan-out bound: 2 jobs over 2 workers


def test_spec_batch_workers_plumbing():
    from repro.service.specs import SpecError, build_plan, normalize_spec

    spec = normalize_spec({"kind": "montecarlo", "seed": 7, "samples": 2,
                           "backend": "batch", "batch_workers": 2})
    assert build_plan(spec).executor["batch_workers"] == 2
    with pytest.raises(SpecError, match="batch_workers"):
        normalize_spec({"kind": "montecarlo", "seed": 7, "batch_workers": 0})
    with pytest.raises(SpecError, match="batch_workers"):
        normalize_spec({"kind": "sensitivity", "batch_workers": 1.5})
