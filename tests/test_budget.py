"""Skew budgets, cross-validated against the event-driven pipeline, and
sensor tuning to a budget."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocktree.budget import (
    SkewBudget,
    recommend_sensitivity,
    skew_budget,
    tune_threshold,
)
from repro.core.sensitivity import extract_tau_min
from repro.logicsim.synth import at_speed_test, build_pipeline
from repro.units import fF, ns


def test_budget_window_formulas():
    budget = skew_budget(
        period=ns(10), comb_min=ns(1), comb_max=ns(6),
        clk_to_q=ns(0.2), setup=ns(0.1), hold=ns(0.05),
    )
    assert budget.min_skew == pytest.approx(ns(0.2 + 6 + 0.1 - 10))
    assert budget.max_skew == pytest.approx(ns(0.2 + 1 - 0.05))
    assert budget.contains(0.0)
    assert not budget.contains(ns(2.0))


def test_budget_rejects_infeasible():
    with pytest.raises(ValueError):
        # comb_max so large that setup bound exceeds hold bound.
        skew_budget(period=ns(2), comb_min=ns(0.1), comb_max=ns(5))
    with pytest.raises(ValueError):
        skew_budget(period=ns(10), comb_min=ns(5), comb_max=ns(1))


def test_symmetric_tolerance():
    budget = SkewBudget(min_skew=-ns(2), max_skew=ns(1))
    assert budget.symmetric_tolerance == pytest.approx(ns(1))
    one_sided = SkewBudget(min_skew=ns(0.1), max_skew=ns(1))
    assert one_sided.symmetric_tolerance == 0.0


def test_recommendation_inside_budget():
    budget = skew_budget(period=ns(10), comb_min=ns(1), comb_max=ns(6))
    tau = recommend_sensitivity(budget, margin=0.8)
    assert 0 < tau < budget.max_skew
    with pytest.raises(ValueError):
        recommend_sensitivity(budget, margin=1.5)


def test_recommendation_rejects_zero_tolerance():
    budget = SkewBudget(min_skew=ns(0.1), max_skew=ns(1))
    with pytest.raises(ValueError):
        recommend_sensitivity(budget)


@settings(max_examples=40, deadline=None)
@given(
    skew_ps=st.one_of(
        st.integers(-7400, 4200),       # spans both budget edges
        st.integers(3000, 3400),        # dense around the hold bound
        st.integers(-6900, -6500),      # dense around the setup bound
    ),
)
def test_budget_agrees_with_event_simulation(skew_ps):
    """Cross-module validation: the closed-form window predicts exactly
    when the gate-level pipeline breaks.

    One stage (comb delay 3 ns) in a 10 ns machine; the capture flop's
    clock is displaced by ``skew``.  Inside the budget the at-speed
    pattern passes and no violations fire; beyond the hold bound the
    pipeline races (the capture flop swallows same-cycle data).
    """
    skew = skew_ps * 1e-12
    stage = ns(3.0)
    period = ns(10.0)
    budget = skew_budget(
        period=period, comb_min=stage, comb_max=stage,
        clk_to_q=ns(0.2), setup=ns(0.1), hold=ns(0.05),
    )
    circuit, flops = build_pipeline(
        [stage], clock_offsets=[0.0, skew],
        setup=ns(0.1), hold=ns(0.05), clk_to_q=ns(0.2),
    )
    result = at_speed_test(circuit, flops, period=period)

    guard = 60e-12  # keep clear of the exact boundary (discrete events)
    if budget.min_skew + guard < skew < budget.max_skew - guard:
        assert result["passed"], f"skew {skew} inside budget must pass"
    elif skew > budget.max_skew + guard or skew < budget.min_skew - guard:
        assert not result["passed"], f"skew {skew} outside budget must fail"


@pytest.mark.slow
def test_tune_threshold_hits_target(fast_options):
    """The Vth knob realises a requested tau_min within tolerance."""
    target = ns(0.15)
    vth = tune_threshold(
        target, fF(160), tolerance=ns(0.01), options=fast_options
    )
    achieved = extract_tau_min(
        fF(160), threshold=vth, tolerance=ns(0.01), options=fast_options
    )
    assert achieved == pytest.approx(target, rel=0.15)
    assert 2.0 < vth < 3.6


@pytest.mark.slow
def test_tune_threshold_rejects_unreachable(fast_options):
    with pytest.raises(ValueError):
        tune_threshold(ns(5.0), fF(160), options=fast_options)
