"""Chaos tests: inject each fault class, assert detection and recovery.

Every robustness claim in the service stack is exercised here by
*producing* the failure it claims to survive, via the deterministic
injector of :mod:`repro.runtime.faults`:

* torn / failing journal writes  -> quarantine + retry (store)
* mid-line corruption            -> CRC frame detects, replay heals
* injected worker crashes        -> bounded requeue, resume completes
* stuck campaigns                -> watchdog cancels / force-fails
* dropped connections, full queues -> client retries, 503 + Retry-After

All sleeps are short and every injection uses ``max_fires`` bounds or
probability 1.0, so outcomes are deterministic, not flaky.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager

import pytest

from repro.errors import InjectedFaultError, WorkerCrashError
from repro.runtime import SensorJob, run_campaign
from repro.runtime.checkpoint import (
    CheckpointJournal,
    frame_entry,
    load_journal,
    quarantine_path,
    unframe_entry,
)
from repro.runtime.faults import (
    FaultInjector,
    inject,
    parse_faults,
    reset_injector,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import CampaignScheduler, QueueFullError
from repro.service.store import JobStore


def wait_for(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def wait_terminal(scheduler, campaign_id, timeout=30.0):
    assert wait_for(
        lambda: scheduler.store.get(campaign_id).terminal, timeout
    ), f"campaign {campaign_id} never became terminal"
    return scheduler.store.get(campaign_id)


# --------------------------------------------------------------------- #
# The injector itself: determinism is what makes chaos runs replayable.
# --------------------------------------------------------------------- #


def drain(injector, site, n):
    return [injector.should_fire(site) for _ in range(n)]


def test_same_seed_same_fire_sequence():
    first = FaultInjector("store.write:0.3", seed=7)
    second = FaultInjector("store.write:0.3", seed=7)
    assert drain(first, "store.write", 200) == drain(
        second, "store.write", 200
    )
    other = FaultInjector("store.write:0.3", seed=8)
    assert drain(first, "store.write", 200) != drain(other, "store.write", 200)


def test_sites_have_independent_streams():
    """Decisions drawn at one site never perturb another site's stream."""
    spec = "store.write:0.5,api.drop:0.5"
    lonely = FaultInjector(spec, seed=3)
    boxed = FaultInjector(spec, seed=3)
    drain(boxed, "api.drop", 50)  # extra draws on an unrelated site
    assert drain(lonely, "store.write", 100) == drain(
        boxed, "store.write", 100
    )


def test_max_fires_caps_total_fires():
    injector = FaultInjector("executor.crash:1.0:2", seed=0)
    assert drain(injector, "executor.crash", 5) == [
        True, True, False, False, False,
    ]
    stats = injector.stats()["sites"]["executor.crash"]
    assert stats["fired"] == 2 and stats["checked"] == 5


def test_unconfigured_site_never_fires():
    injector = FaultInjector("store.write:1.0", seed=0)
    assert drain(injector, "api.drop", 10) == [False] * 10


@pytest.mark.parametrize("clause", [
    "store.write",            # no probability
    "store.write:nope",       # non-numeric probability
    "store.write:1.5",        # out of [0, 1]
    "store.write:0.5:x",      # non-numeric max_fires
    "store.write:0.5:-1",     # negative max_fires
    "a:0.1:2:9",              # too many fields
])
def test_parse_faults_rejects_malformed_clauses(clause):
    with pytest.raises(ValueError):
        parse_faults(clause)


def test_injector_builds_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "store.torn:0.25:3")
    monkeypatch.setenv("REPRO_FAULTS_SEED", "42")
    injector = reset_injector()
    assert injector.active
    assert injector.seed == 42
    site = injector.sites["store.torn"]
    assert site.probability == 0.25 and site.max_fires == 3


# --------------------------------------------------------------------- #
# CRC-framed journal entries: mid-line corruption is detected, not
# silently applied, and the evidence is quarantined.
# --------------------------------------------------------------------- #


def test_frame_roundtrip():
    entry = {"kind": "result", "key": "a" * 16, "result": {"vmin": 1.25}}
    assert unframe_entry(json.loads(frame_entry(entry))) == entry


def test_flipped_byte_fails_crc():
    line = frame_entry({"kind": "state", "id": "abcdef", "state": "done"})
    tampered = line.replace("abcdef", "abcdeg")  # same length, valid JSON
    assert tampered != line
    assert unframe_entry(json.loads(tampered)) is None


def test_unframed_format1_entries_still_load(tmp_path):
    journal = tmp_path / "old.jsonl"
    lines = [
        {"kind": "header", "format": 1},
        {"kind": "result", "key": "k1", "result": {"vmin": 1.0}},
    ]
    journal.write_text("".join(json.dumps(e) + "\n" for e in lines))
    assert load_journal(journal) == {"k1": {"vmin": 1.0}}


def test_load_journal_quarantines_corrupt_lines(tmp_path):
    path = tmp_path / "journal.jsonl"
    with CheckpointJournal(path) as journal:
        journal.record("k1", {"vmin": 1.0})
        journal.append_corrupt(
            {"kind": "result", "key": "k2", "result": {"vmin": 2.0}}
        )
        journal.record("k3", {"vmin": 3.0})
    loaded = load_journal(path, quarantine=True)
    # The corrupt line is skipped (its job will re-evaluate), the
    # healthy neighbours survive, and the evidence is preserved.
    assert set(loaded) == {"k1", "k3"}
    records = [
        json.loads(line)
        for line in quarantine_path(path).read_text().splitlines()
    ]
    assert len(records) == 1
    assert records[0]["lineno"] == 3
    assert records[0]["raw"]


# --------------------------------------------------------------------- #
# Store: torn writes, failing appends, sticky terminals, compaction.
# --------------------------------------------------------------------- #


def test_torn_journal_write_is_quarantined_on_replay(
    tmp_path, synthetic_kind
):
    with inject("store.torn:1.0:1", seed=1):
        with JobStore(tmp_path) as store:
            first = store.submit({"kind": "synthetic", "tag": "one"})
            second = store.submit({"kind": "synthetic", "tag": "two"})
            store.mark_running(first.campaign_id, total=4)
    # Replay after the "crash": the torn line is detected by its CRC
    # frame and quarantined; every real entry still applies.
    with JobStore(tmp_path) as revived:
        assert revived.quarantined == 1
        assert revived.quarantine_file.exists()
        ids = {r.campaign_id for r in revived.list()}
        assert ids == {first.campaign_id, second.campaign_id}
        # running -> queued + resume, exactly as for a clean crash.
        assert revived.get(first.campaign_id).state == "queued"
        assert revived.get(first.campaign_id).resume is True


def test_failing_journal_append_is_retried(tmp_path, synthetic_kind):
    # Two injected failures < WRITE_RETRIES extra attempts: the append
    # (and therefore the submit) succeeds without the caller noticing.
    with inject("store.write:1.0:2", seed=1) as injector:
        with JobStore(tmp_path) as store:
            record = store.submit({"kind": "synthetic"})
        assert injector.stats()["sites"]["store.write"]["fired"] == 2
    with JobStore(tmp_path) as revived:
        assert record.campaign_id in revived


def test_exhausted_write_retries_surface(tmp_path, synthetic_kind):
    with inject("store.write:1.0", seed=1):  # unbounded: every attempt dies
        with JobStore(tmp_path) as store:
            with pytest.raises(InjectedFaultError):
                store.submit({"kind": "synthetic"})


def test_failing_result_publish_is_retried(tmp_path, synthetic_kind):
    with JobStore(tmp_path) as store:
        record = store.submit({"kind": "synthetic"})
        store.mark_running(record.campaign_id, total=1)
        with inject("store.replace:1.0:2", seed=1):
            assert store.mark_done(record.campaign_id, {"n": 1}) is True
        assert store.load_result(record.campaign_id) == {"n": 1}


def test_terminal_states_are_sticky(tmp_path, synthetic_kind):
    """Once done, every later terminator is a no-op returning False -
    the store-level fix for all double-terminate races."""
    with JobStore(tmp_path) as store:
        record = store.submit({"kind": "synthetic"})
        cid = record.campaign_id
        store.mark_running(cid, total=1)
        assert store.mark_done(cid, {"n": 1}) is True
        assert store.mark_cancelled(cid, reason="timeout") is False
        assert store.mark_failed(cid, "boom") is False
        assert store.requeue(cid) is False
        assert store.mark_done(cid, {"n": 2}) is False
        final = store.get(cid)
        assert final.state == "done" and final.error == ""
        assert store.load_result(cid) == {"n": 1}


def test_compaction_preserves_replay_equivalence(tmp_path, synthetic_kind):
    with JobStore(tmp_path) as store:
        done = store.submit({"kind": "synthetic"}, client="alice")
        churned = store.submit({"kind": "synthetic"}, priority=3)
        keyed = store.submit({"kind": "synthetic"}, idempotency_key="dedupe")
        store.mark_running(done.campaign_id, total=4)
        store.mark_done(done.campaign_id, {"n": 4})
        # Grow the journal with a requeue cycle (shutdown + resume).
        for _ in range(4):
            store.mark_running(churned.campaign_id, total=8)
            store.requeue(churned.campaign_id, completed=5)
        store.mark_cancelled(keyed.campaign_id, reason="cancel")
        before = [r.to_payload() for r in store.list()]
        stats = store.compact()
        assert stats["campaigns"] == 3
        assert stats["bytes_after"] < stats["bytes_before"]
        # Compaction changes the journal, never the live records.
        assert [r.to_payload() for r in store.list()] == before
    # The compacted journal replays to the identical record map.
    with JobStore(tmp_path) as revived:
        assert [r.to_payload() for r in revived.list()] == before
        assert revived.quarantined == 0
        replayed = revived.get(churned.campaign_id)
        assert replayed.state == "queued" and replayed.resume is True
        assert replayed.completed == 5
        assert (
            revived.lookup_idempotent("dedupe").campaign_id
            == keyed.campaign_id
        )


def test_idempotent_submit_dedupes_across_restart(tmp_path, synthetic_kind):
    with JobStore(tmp_path) as store:
        first = store.submit({"kind": "synthetic"}, idempotency_key="retry-1")
        again = store.submit({"kind": "synthetic"}, idempotency_key="retry-1")
        assert again.campaign_id == first.campaign_id
        assert len(store.list()) == 1
    with JobStore(tmp_path) as revived:  # the key survives replay
        rerun = revived.submit(
            {"kind": "synthetic"}, idempotency_key="retry-1"
        )
        assert rerun.campaign_id == first.campaign_id
        assert len(revived.list()) == 1


# --------------------------------------------------------------------- #
# Executor: injected worker crashes and hangs.
# --------------------------------------------------------------------- #


def _stub_evaluate(job):
    from repro.runtime import JobResult

    return JobResult(
        skew=job.skew, vmin_y1=1.0, vmin_y2=2.0, code=(0, 0), steps=1
    )


def test_injected_crash_raises_worker_crash_error():
    jobs = [SensorJob(skew=(k + 1) * 1e-12) for k in range(3)]
    with inject("executor.crash:1.0", seed=1):
        with pytest.raises(WorkerCrashError):
            run_campaign(
                jobs, evaluate=_stub_evaluate, cache=None, on_error="raise"
            )


def test_injected_hang_delays_evaluation():
    jobs = [SensorJob(skew=1e-12)]
    with inject("executor.hang:1.0:1", seed=1, hang_s=0.2):
        start = time.monotonic()
        campaign = run_campaign(jobs, evaluate=_stub_evaluate, cache=None)
        elapsed = time.monotonic() - start
    assert len(campaign.results) == 1
    assert elapsed >= 0.2


# --------------------------------------------------------------------- #
# Scheduler: slot faults, crash requeue + resume, watchdog, concurrency.
# --------------------------------------------------------------------- #


def test_slot_fault_fails_campaign_but_scheduler_survives(
    tmp_path, synthetic_kind
):
    scheduler = CampaignScheduler(JobStore(tmp_path))
    scheduler.start()
    try:
        with inject("scheduler.worker:1.0:1", seed=1):
            doomed = scheduler.submit({"kind": "synthetic", "tag": "doomed"})
            final = wait_terminal(scheduler, doomed.campaign_id)
            assert final.state == "failed"
            assert "injected scheduler worker failure" in final.error
            # The slot survived the fault: the next campaign runs.
            healthy = scheduler.submit(
                {"kind": "synthetic", "tag": "healthy"}
            )
            assert wait_terminal(
                scheduler, healthy.campaign_id
            ).state == "done"
        assert synthetic_kind == ["healthy"]
    finally:
        scheduler.stop()
        scheduler.store.close()


def test_worker_crash_requeues_then_resume_completes(
    tmp_path, synthetic_kind
):
    scheduler = CampaignScheduler(JobStore(tmp_path))
    scheduler.start()
    try:
        # Exactly one injected crash: the first evaluation dies, the
        # campaign is requeued for resume, the rerun completes.
        with inject("executor.crash:1.0:1", seed=1):
            record = scheduler.submit({"kind": "synthetic", "jobs": 5})
            final = wait_terminal(scheduler, record.campaign_id)
        assert final.state == "done"
        assert final.completed == 5
        events = scheduler.events(record.campaign_id)
        requeues = [e for e in events if e["event"] == "requeued"]
        assert len(requeues) == 1
        assert requeues[0]["crash"] is True and requeues[0]["attempt"] == 1
        assert scheduler.store.load_result(record.campaign_id)["n"] == 5
    finally:
        scheduler.stop()
        scheduler.store.close()


def test_unbounded_crashes_eventually_fail(tmp_path, synthetic_kind):
    scheduler = CampaignScheduler(JobStore(tmp_path), max_crash_requeues=2)
    scheduler.start()
    try:
        with inject("executor.crash:1.0", seed=1):  # crashes every attempt
            record = scheduler.submit({"kind": "synthetic", "jobs": 3})
            final = wait_terminal(scheduler, record.campaign_id)
        assert final.state == "failed"
        assert "WorkerCrashError" in final.error
        events = scheduler.events(record.campaign_id)
        assert sum(1 for e in events if e["event"] == "requeued") == 2
    finally:
        scheduler.stop()
        scheduler.store.close()


def test_crash_resume_result_is_bit_identical(tmp_path, fresh_cache):
    """A crash-interrupted, resumed campaign folds to the same numbers a
    clean run produces - the resume machinery is invisible in results."""
    spec = {
        "kind": "sensitivity",
        "loads_ff": [160.0],
        "slews_ns": [0.2],
        "tau_max_ns": 1.0,
        "points": 2,
    }
    chaotic = CampaignScheduler(JobStore(tmp_path / "chaos"))
    chaotic.start()
    try:
        with inject("executor.crash:1.0:1", seed=1):
            record = chaotic.submit(dict(spec))
            final = wait_terminal(chaotic, record.campaign_id, timeout=120.0)
        assert final.state == "done"
        assert any(
            e["event"] == "requeued" and e.get("crash")
            for e in chaotic.events(record.campaign_id)
        )
        crashed_result = chaotic.store.load_result(record.campaign_id)
    finally:
        chaotic.stop()
        chaotic.store.close()

    clean = CampaignScheduler(JobStore(tmp_path / "clean"))
    clean.start()
    try:
        record = clean.submit(dict(spec))
        final = wait_terminal(clean, record.campaign_id, timeout=120.0)
        assert final.state == "done"
        clean_result = clean.store.load_result(record.campaign_id)
    finally:
        clean.stop()
        clean.store.close()
    # The physics (the folded curves) must match bit for bit; per-job
    # bookkeeping flags (cached/resumed) legitimately differ.
    assert json.dumps(crashed_result["curves"], sort_keys=True) == \
        json.dumps(clean_result["curves"], sort_keys=True)


def test_watchdog_fails_stuck_campaign(tmp_path, synthetic_kind):
    scheduler = CampaignScheduler(
        JobStore(tmp_path), poll_interval=0.02, watchdog_s=0.2
    )
    scheduler.start()
    try:
        with inject("scheduler.stuck:1.0:1", seed=1):
            stuck = scheduler.submit({"kind": "synthetic", "tag": "stuck"})
            final = wait_terminal(scheduler, stuck.campaign_id, timeout=10.0)
        assert final.state == "failed"
        assert final.error.startswith("stuck: no heartbeat")
        assert scheduler.liveness()["stuck_detected"] == 1
        events = scheduler.events(stuck.campaign_id)
        assert events[-1]["event"] == "failed"
        assert events[-1]["error"] == "StuckCampaign"
        # The slot unwound cleanly; the queue keeps draining.
        healthy = scheduler.submit({"kind": "synthetic", "tag": "next"})
        assert wait_terminal(scheduler, healthy.campaign_id).state == "done"
    finally:
        scheduler.stop()
        scheduler.store.close()


def test_watchdog_force_fails_wedged_slot(tmp_path, synthetic_kind):
    """A slot wedged in foreign code (a job that ignores cancellation)
    is abandoned after the grace period and replaced, so the queue keeps
    draining long before the wedged thread unwinds."""
    scheduler = CampaignScheduler(
        JobStore(tmp_path), poll_interval=0.02, watchdog_s=0.15
    )
    scheduler.start()
    try:
        # One 1.2 s job: no heartbeat, and cancellation is only checked
        # between jobs, so the cancel at ~0.15 s cannot unwind the slot.
        wedged = scheduler.submit(
            {"kind": "synthetic", "jobs": 1, "sleep_s": 1.2, "tag": "wedge"}
        )
        final = wait_terminal(scheduler, wedged.campaign_id, timeout=5.0)
        assert final.state == "failed"
        assert final.error.startswith("stuck")
        events = scheduler.events(wedged.campaign_id)
        forced = [e for e in events if e.get("forced")]
        assert len(forced) == 1 and forced[0]["error"] == "StuckCampaign"
        # The replacement slot runs the next campaign while the wedged
        # thread is still sleeping inside its job.
        healthy = scheduler.submit({"kind": "synthetic", "tag": "after"})
        assert wait_terminal(
            scheduler, healthy.campaign_id, timeout=5.0
        ).state == "done"
        assert synthetic_kind[-1] == "after"
    finally:
        scheduler.stop()
        scheduler.store.close()


def test_two_campaigns_make_concurrent_progress(tmp_path, synthetic_kind):
    scheduler = CampaignScheduler(JobStore(tmp_path), max_concurrent=2)
    scheduler.start()
    try:
        first = scheduler.submit(
            {"kind": "synthetic", "jobs": 40, "sleep_s": 0.02, "tag": "a"}
        )
        second = scheduler.submit(
            {"kind": "synthetic", "jobs": 40, "sleep_s": 0.02, "tag": "b"}
        )

        def both_mid_flight():
            a = scheduler.store.get(first.campaign_id)
            b = scheduler.store.get(second.campaign_id)
            return (
                a.state == "running" and b.state == "running"
                and a.completed >= 1 and b.completed >= 1
            )

        # Interleaved execution, not one-after-the-other: both campaigns
        # are observed mid-flight at the same instant.
        assert wait_for(both_mid_flight, timeout=10.0)
        assert len(scheduler.liveness()["running"]) == 2
        for record in (first, second):
            assert wait_terminal(scheduler, record.campaign_id).state == "done"
    finally:
        scheduler.stop()
        scheduler.store.close()


def test_cancel_storm_keeps_fifo_per_priority(tmp_path, synthetic_kind):
    scheduler = CampaignScheduler(JobStore(tmp_path))  # not started yet
    low1 = scheduler.submit({"kind": "synthetic", "tag": "low1"})
    high1 = scheduler.submit({"kind": "synthetic", "tag": "high1"}, priority=5)
    low2 = scheduler.submit({"kind": "synthetic", "tag": "low2"})
    high2 = scheduler.submit({"kind": "synthetic", "tag": "high2"}, priority=5)
    low3 = scheduler.submit({"kind": "synthetic", "tag": "low3"})
    # The storm: victims across both priority levels while queued.
    assert scheduler.cancel(high1.campaign_id) is True
    assert scheduler.cancel(low2.campaign_id) is True
    scheduler.start()
    try:
        for record in (low1, high2, low3):
            assert wait_terminal(scheduler, record.campaign_id).state == "done"
        for record in (high1, low2):
            assert scheduler.store.get(record.campaign_id).state == "cancelled"
        # Survivors run highest-priority first, FIFO within a level.
        assert synthetic_kind == ["high2", "low1", "low3"]
    finally:
        scheduler.stop()
        scheduler.store.close()


def test_bounded_queue_rejects_with_retry_after(tmp_path, synthetic_kind):
    scheduler = CampaignScheduler(
        JobStore(tmp_path), max_queue_depth=2
    )  # not started: everything stays queued
    scheduler.submit({"kind": "synthetic"})
    scheduler.submit({"kind": "synthetic"})
    with pytest.raises(QueueFullError) as excinfo:
        scheduler.submit({"kind": "synthetic"})
    assert excinfo.value.retry_after >= 1.0
    scheduler.stop()
    scheduler.store.close()


def test_metrics_surface_fault_stats(tmp_path, synthetic_kind):
    scheduler = CampaignScheduler(JobStore(tmp_path))
    try:
        with inject({}, seed=0):  # force chaos off (CI may set REPRO_FAULTS)
            assert "faults" not in scheduler.metrics()
        with inject("store.write:0.0", seed=9):
            faults = scheduler.metrics()["faults"]
        assert faults["seed"] == 9
        assert faults["sites"]["store.write"]["probability"] == 0.0
    finally:
        scheduler.stop()
        scheduler.store.close()


# --------------------------------------------------------------------- #
# HTTP layer: dropped connections, shed load, degraded health.
# --------------------------------------------------------------------- #


@contextmanager
def live_server(tmp_path, **kwargs):
    from repro.service.api import create_server

    server = create_server(state_dir=str(tmp_path / "state"), **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown_all()
        thread.join(5.0)


def test_dropped_connection_is_retried_by_client(tmp_path, synthetic_kind):
    with live_server(tmp_path) as server:
        client = ServiceClient(
            f"http://127.0.0.1:{server.port}",
            retries=3, backoff_base=0.01, seed=1,
        )
        with inject("api.drop:1.0:1", seed=1):
            # First attempt: the handler severs the connection before
            # answering.  The client sees status 0 and retries.
            health = client.health()
        assert health["status"] == "ok"
        assert client.retried >= 1


def test_full_queue_maps_to_503_with_retry_after(tmp_path, synthetic_kind):
    with live_server(tmp_path, max_queue_depth=1) as server:
        client = ServiceClient(f"http://127.0.0.1:{server.port}", retries=0)
        running = client.submit(
            {"kind": "synthetic", "jobs": 200, "sleep_s": 0.02}
        )
        assert wait_for(
            lambda: client.status(running["campaign_id"])["completed"] >= 1,
            timeout=10.0,
        )
        queued = client.submit(
            {"kind": "synthetic", "jobs": 200, "sleep_s": 0.02}
        )
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "synthetic"})
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after >= 1.0
        for record in (running, queued):
            client.cancel(record["campaign_id"])


def test_http_submit_dedupes_on_idempotency_key(tmp_path, synthetic_kind):
    with live_server(tmp_path) as server:
        client = ServiceClient(f"http://127.0.0.1:{server.port}")
        first = client.submit(
            {"kind": "synthetic"}, idempotency_key="same-key"
        )
        again = client.submit(
            {"kind": "synthetic"}, idempotency_key="same-key"
        )
        assert again["campaign_id"] == first["campaign_id"]
        assert len(client.list()) == 1


def test_healthz_reports_scheduler_liveness(tmp_path, synthetic_kind):
    with live_server(tmp_path, max_concurrent=2, watchdog_s=5.0) as server:
        client = ServiceClient(f"http://127.0.0.1:{server.port}")
        health = client.health()
        assert health["status"] == "ok"
        assert health["journal_quarantined"] == 0
        scheduler = health["scheduler"]
        assert scheduler["alive"] is True
        assert scheduler["slots_alive"] == 2
        assert scheduler["max_concurrent"] == 2
        assert scheduler["watchdog_s"] == 5.0
        assert scheduler["running"] == []


# --------------------------------------------------------------------- #
# Client retry policy (no server: the transport is stubbed out).
# --------------------------------------------------------------------- #


def _stubbed_client(answers, **kwargs):
    """A client whose transport replays ``answers`` (exception instances
    are raised, anything else returned)."""
    client = ServiceClient(
        "http://stub", retries=3, backoff_base=0.001, backoff_cap=0.002,
        seed=1, **kwargs,
    )
    calls = []

    def transport(method, path, body=None, timeout=None):
        calls.append((method, path))
        answer = answers[min(len(calls), len(answers)) - 1]
        if isinstance(answer, Exception):
            raise answer
        return answer

    client._request_once = transport
    return client, calls


def test_client_exhausts_retry_budget_then_raises():
    client, calls = _stubbed_client([ServiceError(503, "shedding")])
    with pytest.raises(ServiceError) as excinfo:
        client.status("abc")
    assert excinfo.value.status == 503
    assert len(calls) == 1 + client.retries
    assert client.retried == client.retries


def test_client_recovers_after_transient_failures():
    client, calls = _stubbed_client([
        ServiceError(0, "connection refused"),
        ServiceError(429, "quota", retry_after=0.001),
        {"state": "queued"},
    ])
    assert client.status("abc") == {"state": "queued"}
    assert len(calls) == 3 and client.retried == 2


def test_client_never_retries_non_transient_statuses():
    client, calls = _stubbed_client([ServiceError(404, "no such campaign")])
    with pytest.raises(ServiceError):
        client.status("abc")
    assert len(calls) == 1 and client.retried == 0


def test_plain_post_is_not_retried_but_keyed_submit_is():
    client, calls = _stubbed_client([ServiceError(503, "shedding")])
    with pytest.raises(ServiceError):
        client._request("POST", "/cache/prune", body={})
    assert len(calls) == 1  # no idempotency key: one shot only

    client, calls = _stubbed_client([
        ServiceError(503, "shedding"),
        {"campaign_id": "abc", "state": "queued"},
    ])
    record = client.submit({"kind": "synthetic"})
    assert record["campaign_id"] == "abc"
    assert len(calls) == 2  # the generated key made the POST retryable
