"""Gate-level two-rail checker vs the behavioural reference."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logicsim.checker_gates import CheckerCircuit
from repro.testing.checker import TwoRailChecker


def test_rejects_empty():
    with pytest.raises(ValueError):
        CheckerCircuit(n=0)


def test_input_count_enforced():
    checker = CheckerCircuit(n=2)
    with pytest.raises(ValueError):
        checker.evaluate([(0, 1)])


def test_single_pair_passthrough():
    checker = CheckerCircuit(n=1)
    assert checker.evaluate([(0, 1)]) == (0, 1)
    assert checker.evaluate([(1, 1)]) == (1, 1)
    assert checker.alarm([(1, 1)])
    assert not checker.alarm([(1, 0)])


def test_two_pairs_exhaustive_against_behavioural():
    gate_level = CheckerCircuit(n=2)
    behavioural = TwoRailChecker(n_inputs=2)
    for bits in product((0, 1), repeat=4):
        pairs = [(bits[0], bits[1]), (bits[2], bits[3])]
        assert gate_level.evaluate(pairs) == behavioural.evaluate(pairs), pairs


def test_odd_width_tree():
    gate_level = CheckerCircuit(n=3)
    behavioural = TwoRailChecker(n_inputs=3)
    pairs = [(0, 1), (1, 0), (1, 1)]
    assert gate_level.evaluate(pairs) == behavioural.evaluate(pairs)
    assert gate_level.alarm(pairs)


@settings(max_examples=30, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1)),
        min_size=1, max_size=6,
    )
)
def test_gate_level_matches_behavioural_property(pairs):
    """The synthesised tree computes exactly the behavioural function for
    every input combination and width."""
    gate_level = CheckerCircuit(n=len(pairs))
    behavioural = TwoRailChecker(n_inputs=len(pairs))
    assert gate_level.evaluate(pairs) == behavioural.evaluate(pairs)


def test_alarm_iff_any_error_code():
    gate_level = CheckerCircuit(n=4)
    complementary = [(0, 1), (1, 0)]
    for combo in product(complementary, repeat=4):
        assert not gate_level.alarm(list(combo))
    bad = [(0, 1), (1, 0), (0, 0), (1, 0)]
    assert gate_level.alarm(bad)
