"""Checkpoint journals, resume, crash isolation and timeout attribution."""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import (
    CampaignTimeoutError,
    ConvergenceError,
    JobError,
    WorkerCrashError,
)
from repro.runtime import JobResult, SensorJob, Telemetry, run_campaign
from repro.runtime.checkpoint import CheckpointJournal, load_journal
from repro.units import ns


def _jobs(*skews_ns):
    return [SensorJob(skew=ns(t)) for t in skews_ns]


# --------------------------------------------------------------------- #
# Module-level evaluations (picklable for the process backend).
# --------------------------------------------------------------------- #

_EVAL_LOG = []


def _logged_ok(job):
    _EVAL_LOG.append(job.skew)
    return JobResult(
        skew=job.skew, vmin_y1=job.skew + 1.0, vmin_y2=job.skew + 2.0,
        code=(0, 1), steps=5,
    )


_CRASH_SKEW = ns(7.7)


def _crashy(job):
    if job.skew == _CRASH_SKEW:
        os._exit(23)  # simulate a segfault / OOM kill: no cleanup, no pickle
    return _logged_ok(job)


_SLOW_SKEW = ns(5.5)


def _slow_marked(job):
    if job.skew == _SLOW_SKEW:
        time.sleep(1.5)
    return _logged_ok(job)


_HANG_SKEW = ns(9.9)


def _hung_marked(job):
    if job.skew == _HANG_SKEW:
        time.sleep(60.0)  # effectively hung: far beyond any test budget
    return _logged_ok(job)


_FAIL_SKEW = ns(3.3)


def _fail_marked(job):
    if job.skew == _FAIL_SKEW:
        raise ConvergenceError("injected failure")
    return _logged_ok(job)


# --------------------------------------------------------------------- #
# Journal format.
# --------------------------------------------------------------------- #

def test_journal_roundtrip_and_torn_lines(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with CheckpointJournal(path) as journal:
        journal.record("k1", {"a": 1})
        journal.record("k2", {"b": 2})
    assert load_journal(path) == {"k1": {"a": 1}, "k2": {"b": 2}}

    # A crash mid-write leaves garbage and a torn final line; loading
    # must keep every intact record and skip the rest.
    with open(path, "a") as handle:
        handle.write("not json at all\n")
        handle.write('{"kind": "result", "key": "k3", "resu')
    assert load_journal(path) == {"k1": {"a": 1}, "k2": {"b": 2}}


def test_fresh_journal_truncates(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with CheckpointJournal(path) as journal:
        journal.record("old", {"a": 1})
    with CheckpointJournal(path, fresh=True) as journal:
        journal.record("new", {"b": 2})
    assert load_journal(path) == {"new": {"b": 2}}


def test_missing_journal_loads_empty(tmp_path):
    assert load_journal(str(tmp_path / "nope.jsonl")) == {}


# --------------------------------------------------------------------- #
# Resume: interrupted campaigns restart where they died.
# --------------------------------------------------------------------- #

def test_resume_requires_checkpoint():
    with pytest.raises(ValueError, match="checkpoint"):
        run_campaign([], resume=True)


def test_resume_skips_finished_jobs_exactly(tmp_path):
    jobs = _jobs(0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
    path = str(tmp_path / "campaign.jsonl")
    del _EVAL_LOG[:]

    first = run_campaign(jobs[:2], evaluate=_logged_ok, checkpoint=path)
    assert len(_EVAL_LOG) == 2

    telemetry = Telemetry()
    second = run_campaign(
        jobs, evaluate=_logged_ok, checkpoint=path, resume=True,
        telemetry=telemetry,
    )
    # Exactly total - N new evaluations, telemetry-verified.
    assert len(_EVAL_LOG) == len(jobs)
    assert telemetry.jobs_resumed == 2
    assert telemetry.jobs_evaluated == len(jobs) - 2
    assert [r.skew for r in second] == [job.skew for job in jobs]
    assert second[0].resumed and second[1].resumed
    assert not second[2].resumed
    assert second[0].vmin_y1 == first[0].vmin_y1  # bit-exact replay
    assert all(r.ok for r in second)


def test_raise_mode_interrupt_journals_completed_prefix(tmp_path):
    jobs = _jobs(1.0, 2.0, 3.3, 4.0)  # job[2] fails
    path = str(tmp_path / "campaign.jsonl")
    with pytest.raises(ConvergenceError):
        run_campaign(jobs, evaluate=_fail_marked, checkpoint=path, retries=0)
    assert len(load_journal(path)) == 2  # the jobs completed before the abort

    telemetry = Telemetry()
    done = run_campaign(
        jobs, evaluate=_logged_ok, checkpoint=path, resume=True,
        telemetry=telemetry,
    )
    assert done.ok
    assert telemetry.jobs_resumed == 2
    assert telemetry.jobs_evaluated == 2


def test_collected_failures_are_not_journalled(tmp_path):
    jobs = _jobs(1.0, 3.3, 2.0)  # job[1] fails
    path = str(tmp_path / "campaign.jsonl")
    campaign = run_campaign(
        jobs, evaluate=_fail_marked, checkpoint=path, retries=0,
        on_error="collect",
    )
    (record,) = campaign.errors
    assert record.error == "ConvergenceError"
    assert len(load_journal(path)) == 2  # failures must retry on resume

    telemetry = Telemetry()
    done = run_campaign(
        jobs, evaluate=_logged_ok, checkpoint=path, resume=True,
        telemetry=telemetry,
    )
    assert done.ok
    assert telemetry.jobs_resumed == 2
    assert telemetry.jobs_evaluated == 1  # only the previously failed job


# --------------------------------------------------------------------- #
# Crash isolation: a killed worker breaks only its pool generation.
# --------------------------------------------------------------------- #

def test_worker_crash_is_collected_and_remaining_jobs_finish():
    jobs = _jobs(1.0, 7.7, 2.0, 4.0)  # job[1] kills its worker
    telemetry = Telemetry()
    campaign = run_campaign(
        jobs, backend="process", max_workers=2, evaluate=_crashy,
        on_error="collect", retries=0, max_redispatch=0, telemetry=telemetry,
    )
    assert len(campaign) == len(jobs)
    crashed = campaign[1]
    assert isinstance(crashed, JobError)
    assert crashed.error == "WorkerCrashError"
    assert crashed.job.skew == _CRASH_SKEW
    assert isinstance(crashed.exception(), WorkerCrashError)
    for index in (0, 2, 3):
        assert campaign[index].ok
        assert campaign[index].skew == jobs[index].skew
    assert telemetry.worker_crashes >= 1
    assert telemetry.redispatches >= 1
    assert telemetry.jobs_failed == 1


def test_crash_isolates_only_in_flight_jobs():
    """A crash must not serialise the never-started remainder: only the
    jobs in flight when the pool broke (at most ``max_workers``) are
    re-dispatched in isolation; the rest rerun on a parallel pool."""
    jobs = _jobs(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.7, 8.0)
    telemetry = Telemetry()
    campaign = run_campaign(
        jobs, backend="process", max_workers=2, evaluate=_crashy,
        on_error="collect", retries=0, max_redispatch=0, telemetry=telemetry,
    )
    assert len(campaign) == len(jobs)
    (crashed,) = campaign.errors
    assert crashed.error == "WorkerCrashError"
    assert crashed.job.skew == _CRASH_SKEW
    assert telemetry.redispatches <= 2  # bounded by the worker count


def test_worker_crash_raises_with_job_descriptor():
    jobs = _jobs(1.0, 7.7)
    with pytest.raises(WorkerCrashError) as excinfo:
        run_campaign(
            jobs, backend="process", max_workers=2, evaluate=_crashy,
            retries=0, max_redispatch=0,
        )
    error = excinfo.value
    assert error.job is jobs[1]
    assert error.dispatches >= 1
    assert "dispatches" in error.diagnostics.extra


# --------------------------------------------------------------------- #
# Timeouts carry the offending job descriptor.
# --------------------------------------------------------------------- #

def test_timeout_collects_job_error_with_descriptor():
    jobs = _jobs(1.0, 5.5, 2.0)  # job[1] sleeps past the budget
    campaign = run_campaign(
        jobs, backend="thread", max_workers=3, evaluate=_slow_marked,
        timeout=0.3, on_error="collect",
    )
    timed_out = campaign[1]
    assert isinstance(timed_out, JobError)
    assert timed_out.error == "CampaignTimeoutError"
    assert timed_out.job.skew == _SLOW_SKEW
    error = timed_out.exception()
    assert isinstance(error, CampaignTimeoutError)
    assert isinstance(error, TimeoutError)
    assert timed_out.diagnostics["extra"]["elapsed_s"] > 0
    assert campaign[0].ok and campaign[2].ok


def test_process_timeout_kills_stuck_worker():
    """A genuinely hung process worker must be killed, not joined: the
    campaign finishes in ~timeout wall time, not the job's 60 s."""
    jobs = _jobs(1.0, 9.9, 2.0)  # job[1] hangs far past the budget
    watch = time.perf_counter()
    campaign = run_campaign(
        jobs, backend="process", max_workers=2, evaluate=_hung_marked,
        timeout=1.0, on_error="collect",
    )
    assert time.perf_counter() - watch < 30.0  # nowhere near the 60 s sleep
    timed_out = campaign[1]
    assert isinstance(timed_out, JobError)
    assert timed_out.error == "CampaignTimeoutError"
    assert timed_out.job.skew == _HANG_SKEW
    assert campaign[0].ok and campaign[2].ok


def test_timeout_raises_with_job_attempts_elapsed():
    jobs = _jobs(1.0, 5.5)
    with pytest.raises(CampaignTimeoutError) as excinfo:
        run_campaign(
            jobs, backend="thread", max_workers=2, evaluate=_slow_marked,
            timeout=0.3,
        )
    error = excinfo.value
    assert error.job is jobs[1]
    assert error.elapsed > 0
    assert error.attempts >= 1
