"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_waves_command(capsys):
    assert main(["waves", "--skew", "0.6", "--load", "160"]) == 0
    out = capsys.readouterr().out
    assert "code = (0, 1)" in out
    assert "y1:" in out


def test_waves_no_skew(capsys):
    assert main(["waves", "--skew", "0.0"]) == 0
    assert "code = (0, 0)" in capsys.readouterr().out


def test_sensitivity_command(capsys):
    assert main([
        "sensitivity", "--loads", "160", "--points", "4", "--tau-max", "0.4",
    ]) == 0
    out = capsys.readouterr().out
    assert "tau_min" in out
    assert "160 fF" in out


def test_scheme_command_healthy(capsys):
    assert main(["scheme", "--levels", "2", "--sensors", "3"]) == 0
    out = capsys.readouterr().out
    assert "checker   : ok" in out


def test_scheme_command_with_fault(capsys):
    # Find a monitored sink first.
    assert main(["scheme", "--levels", "2", "--sensors", "1"]) == 0
    out = capsys.readouterr().out
    pair_line = [l for l in out.splitlines() if "skew" in l][0]
    victim = pair_line.split()[0].split("/")[0]

    assert main([
        "scheme", "--levels", "2", "--sensors", "1",
        "--open-node", victim, "--open-ohms", "9000",
    ]) == 0
    out = capsys.readouterr().out
    assert "ALARM" in out
    assert "1" in out.split("scan path :")[1]


def test_export_command_stdout(capsys):
    assert main(["export"]) == 0
    out = capsys.readouterr().out
    assert ".MODEL" in out
    assert out.rstrip().endswith(".END")


def test_export_command_file(tmp_path, capsys):
    target = tmp_path / "sensor.sp"
    assert main(["export", "-o", str(target)]) == 0
    text = target.read_text()
    assert "Ma nA phi2 vdd" in text
    # The exported deck re-imports cleanly.
    from repro.circuit.spice import from_spice

    netlist = from_spice(text)
    assert len(netlist.mosfets) == 10
