"""Command-line interface."""

import os
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_waves_command(capsys):
    assert main(["waves", "--skew", "0.6", "--load", "160"]) == 0
    out = capsys.readouterr().out
    assert "code = (0, 1)" in out
    assert "y1:" in out


def test_waves_no_skew(capsys):
    assert main(["waves", "--skew", "0.0"]) == 0
    assert "code = (0, 0)" in capsys.readouterr().out


def test_sensitivity_command(capsys):
    assert main([
        "sensitivity", "--loads", "160", "--points", "4", "--tau-max", "0.4",
    ]) == 0
    out = capsys.readouterr().out
    assert "tau_min" in out
    assert "160 fF" in out


def test_campaign_help_smoke():
    """`python -m repro campaign --help` must parse and exit 0."""
    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", "--help"])
    assert excinfo.value.code == 0

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "campaign", "--help"],
        env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0
    assert "--backend" in proc.stdout


def test_campaign_command_runs_with_telemetry(capsys, fresh_cache):
    report = fresh_cache / "telemetry.json"
    assert main([
        "campaign", "--loads", "160", "--slews", "0.2", "--points", "3",
        "--tau-max", "0.4", "--json", str(report),
    ]) == 0
    out = capsys.readouterr().out
    assert "tau_min" in out
    assert "runtime telemetry" in out
    assert "3 evaluated" in out
    assert report.exists()

    # Warm rerun: every point must replay, zero new integrations.
    assert main([
        "campaign", "--loads", "160", "--slews", "0.2", "--points", "3",
        "--tau-max", "0.4",
    ]) == 0
    out = capsys.readouterr().out
    assert "3 total, 0 evaluated, 3 from cache" in out
    assert "0 misses" in out
    assert "0 integration points" in out


def test_sensitivity_stats_flag(capsys, fresh_cache):
    args = ["sensitivity", "--loads", "160", "--points", "3",
            "--tau-max", "0.4", "--stats"]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "3 from cache" in out
    assert "0 misses" in out


def test_cache_info_and_clear(capsys, fresh_cache):
    assert main(["sensitivity", "--loads", "160", "--points", "3",
                 "--tau-max", "0.4"]) == 0
    capsys.readouterr()
    assert main(["cache", "info"]) == 0
    out = capsys.readouterr().out
    assert str(fresh_cache) in out
    assert "3 on disk" in out
    assert main(["cache", "clear"]) == 0
    assert "cleared 3" in capsys.readouterr().out


def test_scheme_command_healthy(capsys):
    assert main(["scheme", "--levels", "2", "--sensors", "3"]) == 0
    out = capsys.readouterr().out
    assert "checker   : ok" in out


def test_scheme_command_with_fault(capsys):
    # Find a monitored sink first.
    assert main(["scheme", "--levels", "2", "--sensors", "1"]) == 0
    out = capsys.readouterr().out
    pair_line = [l for l in out.splitlines() if "skew" in l][0]
    victim = pair_line.split()[0].split("/")[0]

    assert main([
        "scheme", "--levels", "2", "--sensors", "1",
        "--open-node", victim, "--open-ohms", "9000",
    ]) == 0
    out = capsys.readouterr().out
    assert "ALARM" in out
    assert "1" in out.split("scan path :")[1]


def test_export_command_stdout(capsys):
    assert main(["export"]) == 0
    out = capsys.readouterr().out
    assert ".MODEL" in out
    assert out.rstrip().endswith(".END")


def test_export_command_file(tmp_path, capsys):
    target = tmp_path / "sensor.sp"
    assert main(["export", "-o", str(target)]) == 0
    text = target.read_text()
    assert "Ma nA phi2 vdd" in text
    # The exported deck re-imports cleanly.
    from repro.circuit.spice import from_spice

    netlist = from_spice(text)
    assert len(netlist.mosfets) == 10


def test_campaign_checkpoint_resume(capsys, fresh_cache):
    journal = fresh_cache / "journal.jsonl"
    base = ["campaign", "--loads", "160", "--slews", "0.2", "--points", "2",
            "--tau-max", "0.4", "--no-cache", "--checkpoint", str(journal)]
    assert main(base) == 0
    out = capsys.readouterr().out
    assert "2 evaluated" in out
    assert journal.exists()

    # The resumed run must replay the journal: zero new integrations,
    # even with the result cache disabled.
    assert main(base + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "0 evaluated" in out
    assert "2 resumed" in out
    assert "0 integration points" in out


def test_campaign_resume_requires_checkpoint(capsys):
    assert main(["campaign", "--loads", "160", "--points", "2",
                 "--tau-max", "0.4", "--resume"]) == 2
    assert "requires --checkpoint" in capsys.readouterr().err


def test_montecarlo_command_batch_backend(capsys, fresh_cache):
    assert main([
        "montecarlo", "--samples", "2", "--seed", "3",
        "--skews", "0.0", "0.3", "--backend", "batch", "--no-cache",
        "--stats",
    ]) == 0
    out = capsys.readouterr().out
    assert "2 samples x 2 skews (batch backend, seed 3)" in out
    assert "tau[ns]" in out
    # Every (sample, skew) point went through the lockstep engine.
    assert "4 sample(s) in lockstep, 0 scalar fallback(s)" in out


def test_montecarlo_seed_reproducible(capsys, fresh_cache):
    args = ["montecarlo", "--samples", "2", "--seed", "11",
            "--skews", "0.1", "--backend", "serial", "--no-cache"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    assert capsys.readouterr().out == first


def test_sample_population_seed_threading():
    from repro.montecarlo.sampling import sample_population
    from repro.units import fF

    a = sample_population(3, fF(160), seed=42)
    b = sample_population(3, fF(160), seed=42)
    c = sample_population(3, fF(160), seed=43)
    assert [s.slew1 for s in a] == [s.slew1 for s in b]
    assert [s.load1 for s in a] == [s.load1 for s in b]
    assert [s.slew1 for s in a] != [s.slew1 for s in c]
