"""Clock tree datastructure, H-tree, Elmore timing."""

import numpy as np
import pytest

from repro.clocktree.htree import build_h_tree
from repro.clocktree.rc import (
    WireModel,
    elmore_delays,
    sink_delays,
    stage_load,
    subtree_capacitance,
)
from repro.clocktree.tree import Buffer, ClockTree, TreeNode, Wire, manhattan


def test_manhattan_distance():
    assert manhattan((0.0, 0.0), (3.0, 4.0)) == 7.0


def test_tree_walk_and_sinks():
    root = TreeNode(name="r", position=(0, 0))
    a = root.add_child(TreeNode(name="a", position=(1, 0), wire=Wire(1.0)))
    b = root.add_child(TreeNode(name="b", position=(0, 1), wire=Wire(1.0)))
    a.add_child(TreeNode(name="a1", position=(2, 0), wire=Wire(1.0)))
    tree = ClockTree(root=root)
    names = [n.name for n in tree.walk()]
    assert names[0] == "r"
    assert {s.name for s in tree.sinks()} == {"a1", "b"}
    assert tree.depth() == 3
    assert tree.total_wire_length() == 3.0


def test_add_child_requires_wire():
    root = TreeNode(name="r", position=(0, 0))
    with pytest.raises(ValueError):
        root.add_child(TreeNode(name="x", position=(1, 0)))


def test_node_lookup():
    tree = build_h_tree(levels=1)
    assert tree.node("root") is tree.root
    with pytest.raises(KeyError):
        tree.node("nonexistent")


def test_path_to_root_chain():
    tree = build_h_tree(levels=2)
    sink = tree.sinks()[0]
    path = tree.path_to(sink)
    assert path[0] is tree.root
    assert path[-1] is sink


# --------------------------------------------------------------------- #
# H-tree
# --------------------------------------------------------------------- #

def test_h_tree_sink_count():
    for levels in (1, 2, 3):
        tree = build_h_tree(levels=levels)
        assert len(tree.sinks()) == 4**levels


def test_h_tree_zero_skew_by_symmetry():
    tree = build_h_tree(levels=3, buffer=Buffer())
    delays = sink_delays(tree)
    values = np.array(list(delays.values()))
    assert values.max() - values.min() < 1e-15


def test_h_tree_path_lengths_equal():
    tree = build_h_tree(levels=2)
    lengths = []
    for sink in tree.sinks():
        lengths.append(
            sum(n.wire.length for n in tree.path_to(sink) if n.wire is not None)
        )
    assert max(lengths) == pytest.approx(min(lengths))


def test_h_tree_sinks_within_die():
    chip = 10e-3
    tree = build_h_tree(levels=3, chip_size=chip)
    for sink in tree.sinks():
        x, y = sink.position
        assert 0.0 <= x <= chip
        assert 0.0 <= y <= chip


def test_h_tree_buffer_every():
    sparse = build_h_tree(levels=2, buffer=Buffer(), buffer_every=2)
    dense = build_h_tree(levels=2, buffer=Buffer(), buffer_every=1)
    count = lambda t: sum(1 for n in t.walk() if n.buffer is not None)
    assert count(dense) > count(sparse)


def test_h_tree_validation():
    with pytest.raises(ValueError):
        build_h_tree(levels=0)
    with pytest.raises(ValueError):
        build_h_tree(levels=1, buffer_every=0)


# --------------------------------------------------------------------- #
# Elmore timing
# --------------------------------------------------------------------- #

def hand_tree():
    """root --(wire L1)-- mid --(wire L2)-- leaf, with a sink cap."""
    root = TreeNode(name="root", position=(0, 0))
    mid = root.add_child(
        TreeNode(name="mid", position=(1e-3, 0), wire=Wire(1e-3))
    )
    mid.add_child(
        TreeNode(
            name="leaf", position=(2e-3, 0), wire=Wire(1e-3),
            sink_capacitance=100e-15,
        )
    )
    return ClockTree(root=root)


def test_elmore_matches_hand_calculation():
    tree = hand_tree()
    model = WireModel()
    rs = 100.0
    r = model.resistance_per_length * 1e-3
    c = model.capacitance_per_length * 1e-3
    cl = 100e-15

    expected_root = rs * (2 * c + cl)
    expected_mid = expected_root + r * (0.5 * c + c + cl)
    expected_leaf = expected_mid + r * (0.5 * c + cl)

    delays = elmore_delays(tree, model, source_resistance=rs)
    assert delays["root"] == pytest.approx(expected_root, rel=1e-12)
    assert delays["mid"] == pytest.approx(expected_mid, rel=1e-12)
    assert delays["leaf"] == pytest.approx(expected_leaf, rel=1e-12)


def test_elmore_monotone_down_the_tree():
    tree = build_h_tree(levels=2, buffer=Buffer())
    delays = elmore_delays(tree)
    for node in tree.walk():
        if node.parent is not None:
            assert delays[node.name] >= delays[node.parent.name]


def test_buffer_isolates_downstream_capacitance():
    """Adding load behind a buffer must not change upstream delay."""
    light = hand_tree()
    light.node("mid").buffer = Buffer()
    heavy = hand_tree()
    heavy.node("mid").buffer = Buffer()
    heavy.node("leaf").sink_capacitance = 1e-12  # 10x load

    d_light = elmore_delays(light)
    d_heavy = elmore_delays(heavy)
    assert d_light["root"] == pytest.approx(d_heavy["root"])
    assert d_heavy["leaf"] > d_light["leaf"]


def test_subtree_capacitance_with_buffer():
    tree = hand_tree()
    model = WireModel()
    mid = tree.node("mid")
    unbuffered = subtree_capacitance(mid, model)
    mid.buffer = Buffer(input_capacitance=30e-15)
    buffered = subtree_capacitance(mid, model)
    assert buffered == pytest.approx(30e-15)
    assert unbuffered > buffered


def test_stage_load_ignores_own_buffer():
    tree = hand_tree()
    model = WireModel()
    mid = tree.node("mid")
    before = stage_load(mid, model)
    mid.buffer = Buffer()
    after = stage_load(mid, model)
    assert before == pytest.approx(after)


def test_extra_parasitics_increase_delay():
    base = hand_tree()
    slow = hand_tree()
    slow.node("leaf").wire.extra_resistance = 5000.0
    assert elmore_delays(slow)["leaf"] > elmore_delays(base)["leaf"]

    noisy = hand_tree()
    noisy.node("leaf").wire.extra_capacitance = 500e-15
    assert elmore_delays(noisy)["leaf"] > elmore_delays(base)["leaf"]
