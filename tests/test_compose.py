"""Netlist grafting (subcircuit composition)."""

import pytest

from repro.circuit.compose import graft, prefixed_guess
from repro.circuit.netlist import Netlist
from repro.circuit.validate import validate
from repro.core.sensing import SkewSensor
from repro.devices.mosfet import MosfetType
from repro.devices.process import nominal_process


def host_netlist():
    net = Netlist(name="host")
    net.drive_dc("vdd", 5.0)
    net.drive_dc("clk_a", 0.0)
    net.drive_dc("clk_b", 0.0)
    net.add_capacitor("chost", "clk_a", "0", 1e-15)
    return net


def test_graft_prefixes_devices_and_internal_nodes():
    host = host_netlist()
    mapping = graft(
        host, SkewSensor(parasitics=False).build(), prefix="s1",
        connections={"phi1": "clk_a", "phi2": "clk_b"},
    )
    assert host.find_mosfet("s1_a") is not None
    assert mapping["y1"] == "s1_y1"
    assert mapping["phi1"] == "clk_a"
    assert mapping["vdd"] == "vdd"      # shared rail
    assert "s1_y1" in host.nodes()


def test_graft_leaves_source_untouched():
    host = host_netlist()
    source = SkewSensor(parasitics=False).build()
    n_before = len(source.mosfets)
    graft(host, source, prefix="s1",
          connections={"phi1": "clk_a", "phi2": "clk_b"})
    assert len(source.mosfets) == n_before
    assert source.find_mosfet("a").drain == "nA"


def test_two_grafts_coexist_and_validate():
    host = host_netlist()
    source = SkewSensor(parasitics=False).build()
    graft(host, source, prefix="s1",
          connections={"phi1": "clk_a", "phi2": "clk_b"})
    graft(host, source, prefix="s2",
          connections={"phi1": "clk_a", "phi2": "clk_b"})
    validate(host)
    assert host.find_mosfet("s1_l") is not None
    assert host.find_mosfet("s2_l") is not None


def test_duplicate_prefix_rejected():
    host = host_netlist()
    source = SkewSensor(parasitics=False).build()
    graft(host, source, prefix="s1",
          connections={"phi1": "clk_a", "phi2": "clk_b"})
    with pytest.raises(ValueError):
        graft(host, source, prefix="s1",
              connections={"phi1": "clk_a", "phi2": "clk_b"})


def test_unmapped_driven_node_rejected():
    host = host_netlist()
    source = Netlist(name="sub")
    source.drive_dc("bias", 2.0)
    p = nominal_process()
    source.add_mosfet("m1", "out", "bias", "0", MosfetType.NMOS,
                      1e-6, 1e-6, p.nmos)
    with pytest.raises(ValueError):
        graft(host, source, prefix="x")


def test_rails_can_be_prefixed_when_not_shared():
    host = host_netlist()
    host.drive_dc("vdd_island", 3.3)
    source = Netlist(name="sub")
    p = nominal_process()
    source.add_mosfet("m1", "out", "in", "vdd", MosfetType.PMOS,
                      1e-6, 1e-6, p.pmos)
    source.add_capacitor("c1", "out", "0", 1e-15)
    mapping = graft(
        host, source, prefix="isl", share_rails=False,
        connections={"vdd": "vdd_island", "0": "0", "in": "clk_a"},
    )
    assert mapping["vdd"] == "vdd_island"
    assert host.find_mosfet("isl_m1").source == "vdd_island"


def test_fault_flags_survive_graft():
    host = host_netlist()
    source = SkewSensor(parasitics=False).build()
    source.find_mosfet("d").stuck_open = True
    graft(host, source, prefix="s1",
          connections={"phi1": "clk_a", "phi2": "clk_b"})
    assert host.find_mosfet("s1_d").stuck_open


def test_prefixed_guess_translation():
    mapping = {"y1": "s1_y1", "y2": "s1_y2", "phi1": "clk_a"}
    guess = prefixed_guess({"y1": 5.0, "y2": 0.0, "other": 1.0}, mapping)
    assert guess == {"s1_y1": 5.0, "s1_y2": 0.0}
