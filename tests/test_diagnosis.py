"""Fault localisation from latched indicator directions."""

import pytest

from repro.clocktree.faults import BufferSlowdown, ResistiveOpen
from repro.clocktree.htree import build_h_tree
from repro.clocktree.tree import Buffer
from repro.testing.diagnosis import diagnose, diagnosis_report
from repro.testing.scheme import ClockTestingScheme
from repro.units import ns


@pytest.fixture()
def scheme():
    tree = build_h_tree(levels=2, buffer=Buffer())
    return ClockTestingScheme.plan(
        tree, tau_min=ns(0.12), max_distance=10e-3, top_k=8
    )


def test_clean_diagnosis_without_faults(scheme):
    scheme.observe()
    diagnosis = diagnose(scheme)
    assert diagnosis.clean
    assert "within tolerance" in diagnosis_report(diagnosis)


def test_single_open_localised_to_victim(scheme):
    victim = scheme.placements[0].pair.sink_a
    fault = ResistiveOpen(node=victim, extra_resistance=10_000.0)
    scheme.observe(fault.apply(scheme.tree))
    diagnosis = diagnose(scheme)
    assert victim in diagnosis.late_candidates
    assert victim not in diagnosis.early_candidates
    # The victim's own path is implicated, ending at the victim.
    assert diagnosis.implicated_nodes[-1] == victim or \
        victim in diagnosis.implicated_nodes


def test_victim_ranked_first_when_in_multiple_pairs(scheme):
    """A sink monitored by several pairs accumulates late votes and ranks
    above incidentally flagged partners."""
    # Find a sink that appears in at least two monitored pairs.
    counts = {}
    for p in scheme.placements:
        counts[p.pair.sink_a] = counts.get(p.pair.sink_a, 0) + 1
        counts[p.pair.sink_b] = counts.get(p.pair.sink_b, 0) + 1
    victim = max(counts, key=counts.get)
    if counts[victim] < 2:
        pytest.skip("placement has no shared sinks")
    fault = ResistiveOpen(node=victim, extra_resistance=10_000.0)
    scheme.observe(fault.apply(scheme.tree))
    diagnosis = diagnose(scheme)
    assert diagnosis.late_candidates[0] == victim


def test_buffer_fault_implicates_shared_branch(scheme):
    branch = next(
        n.name for n in scheme.tree.walk()
        if n.buffer is not None and n.parent is not None
    )
    fault = BufferSlowdown(node=branch, factor=1.5)
    scheme.observe(fault.apply(scheme.tree))
    diagnosis = diagnose(scheme)
    assert not diagnosis.clean
    # Every late candidate lies under the slowed branch.
    under = {
        s.name for s in scheme.tree.sinks()
        if any(p.name == branch for p in scheme.tree.path_to(s))
    }
    assert set(diagnosis.late_candidates) <= under
    assert branch in diagnosis.implicated_nodes


def test_direction_separates_late_from_early(scheme):
    victim = scheme.placements[0].pair.sink_b
    fault = ResistiveOpen(node=victim, extra_resistance=10_000.0)
    scheme.observe(fault.apply(scheme.tree))
    diagnosis = diagnose(scheme)
    partner = scheme.placements[0].pair.sink_a
    assert victim in diagnosis.late_candidates
    assert partner in diagnosis.early_candidates or \
        partner not in diagnosis.late_candidates


def test_report_mentions_candidates(scheme):
    victim = scheme.placements[0].pair.sink_a
    scheme.observe(
        ResistiveOpen(node=victim, extra_resistance=10_000.0).apply(scheme.tree)
    )
    text = diagnosis_report(diagnose(scheme))
    assert victim in text
    assert "late" in text
