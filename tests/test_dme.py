"""Zero-skew DME routing baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocktree.dme import build_zero_skew_tree
from repro.clocktree.rc import WireModel, sink_delays
from repro.clocktree.tree import Buffer, manhattan


def random_sinks(rng, n, span=8e-3, cap=50e-15):
    return [
        (f"s{k}", (float(rng.uniform(0, span)), float(rng.uniform(0, span))), cap)
        for k in range(n)
    ]


def skew_spread(tree):
    delays = np.array(list(sink_delays(tree).values()))
    return float(delays.max() - delays.min()), float(delays.mean())


def test_single_sink_tree():
    tree = build_zero_skew_tree([("s0", (1e-3, 1e-3), 50e-15)])
    assert [s.name for s in tree.sinks()] == ["s0"]


def test_rejects_empty_sink_list():
    with pytest.raises(ValueError):
        build_zero_skew_tree([])


def test_two_equal_sinks_tap_at_midpoint():
    sinks = [("a", (0.0, 0.0), 50e-15), ("b", (2e-3, 0.0), 50e-15)]
    tree = build_zero_skew_tree(sinks)
    spread, _ = skew_spread(tree)
    assert spread < 1e-18
    assert tree.root.position == pytest.approx((1e-3, 0.0))


def test_unequal_loads_shift_tap_toward_heavy_sink():
    """The heavier sink needs less wire resistance in front of it."""
    sinks = [("heavy", (0.0, 0.0), 500e-15), ("light", (2e-3, 0.0), 20e-15)]
    tree = build_zero_skew_tree(sinks)
    spread, _ = skew_spread(tree)
    assert spread < 1e-16
    assert tree.root.position[0] < 1e-3  # closer to the heavy sink


def test_zero_skew_on_power_of_two_sinks():
    rng = np.random.default_rng(3)
    tree = build_zero_skew_tree(random_sinks(rng, 16))
    spread, mean = skew_spread(tree)
    assert spread < 1e-6 * mean


def test_zero_skew_on_odd_sink_count():
    """Odd counts exercise the carried-subtree path and later unequal-delay
    merges (snaking)."""
    rng = np.random.default_rng(4)
    tree = build_zero_skew_tree(random_sinks(rng, 13))
    spread, mean = skew_spread(tree)
    assert spread < 1e-6 * mean


def test_heterogeneous_loads_balanced():
    rng = np.random.default_rng(5)
    sinks = [
        (f"s{k}", (float(rng.uniform(0, 5e-3)), float(rng.uniform(0, 5e-3))),
         float(rng.uniform(20e-15, 300e-15)))
        for k in range(9)
    ]
    tree = build_zero_skew_tree(sinks)
    spread, mean = skew_spread(tree)
    assert spread < 1e-6 * mean


def test_root_buffer_preserves_zero_skew():
    rng = np.random.default_rng(6)
    tree = build_zero_skew_tree(random_sinks(rng, 8), root_buffer=Buffer())
    spread, mean = skew_spread(tree)
    assert spread < 1e-6 * mean
    assert tree.root.buffer is not None


def test_wire_length_at_least_spanning_distance():
    """Snaking only ever adds wire: total length >= direct merge length."""
    rng = np.random.default_rng(7)
    sinks = random_sinks(rng, 8)
    tree = build_zero_skew_tree(sinks)
    for node in tree.walk():
        for child in node.children:
            direct = manhattan(node.position, child.position)
            assert child.wire.length >= direct - 1e-12


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 12),
)
def test_zero_skew_property_randomised(seed, n):
    """DME invariant: every routed instance has (numerically) zero skew."""
    rng = np.random.default_rng(seed)
    sinks = [
        (f"s{k}",
         (float(rng.uniform(0, 6e-3)), float(rng.uniform(0, 6e-3))),
         float(rng.uniform(10e-15, 200e-15)))
        for k in range(n)
    ]
    tree = build_zero_skew_tree(sinks)
    delays = np.array(list(sink_delays(tree).values()))
    assert delays.max() - delays.min() <= max(1e-15, 1e-6 * delays.mean())


def test_all_sinks_preserved():
    rng = np.random.default_rng(8)
    sinks = random_sinks(rng, 11)
    tree = build_zero_skew_tree(sinks)
    assert {s.name for s in tree.sinks()} == {name for name, _, _ in sinks}


def test_custom_wire_model_consistency():
    """Zero skew holds under the same model used for routing."""
    model = WireModel(resistance_per_length=120e3, capacitance_per_length=250e-12)
    rng = np.random.default_rng(9)
    tree = build_zero_skew_tree(random_sinks(rng, 8), model=model)
    delays = np.array(list(sink_delays(tree, model=model).values()))
    assert delays.max() - delays.min() < 1e-6 * delays.mean()
