"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) of the reproduction demands doc comments on every public
item; this test walks the installed package and fails on any public
module, class, function, or method without one.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        yield importlib.import_module(info.name)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} lacks a docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_functions_and_classes_documented(module):
    missing = []
    for name, obj in vars(module).items():
        if not _is_public(name):
            continue
        if inspect.isfunction(obj) or inspect.isclass(obj):
            # Only police items defined in this package.
            if getattr(obj, "__module__", "").startswith("repro"):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    missing.append(f"{module.__name__}.{name}")
                if inspect.isclass(obj):
                    for meth_name, meth in vars(obj).items():
                        if not _is_public(meth_name):
                            continue
                        if inspect.isfunction(meth) and not (
                            meth.__doc__ and meth.__doc__.strip()
                        ):
                            missing.append(
                                f"{module.__name__}.{name}.{meth_name}"
                            )
    assert not missing, f"undocumented public items: {missing}"
