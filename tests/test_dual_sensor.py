"""The dual (falling-edge) sensing circuit of footnote 1."""

import pytest

from repro.core.dual import DualSkewSensor, simulate_dual_sensor
from repro.core.response import ERROR_NONE, ERROR_PHI1_LATE, ERROR_PHI2_LATE
from repro.core.sensing import SkewSensor
from repro.devices.mosfet import MosfetType
from repro.devices.process import nominal_process
from repro.units import VTH_INTERPRET, fF, ns


@pytest.fixture(scope="module")
def dual():
    return DualSkewSensor(load1=fF(160), load2=fF(160))


def test_polarities_are_complemented(dual):
    """Every device has the opposite polarity of its Fig.-1 counterpart."""
    base = {m.name: m.mtype for m in SkewSensor().build().mosfets}
    complemented = {m.name: m.mtype for m in dual.build().mosfets}
    for name, mtype in base.items():
        assert complemented[name] is not mtype


def test_rails_are_swapped(dual):
    """The gated network hangs from ground; the feedback stack from VDD."""
    by_name = {m.name: m for m in dual.build().mosfets}
    assert by_name["a"].source == "0" and by_name["a"].mtype is MosfetType.NMOS
    assert by_name["e"].source == "vdd" and by_name["e"].mtype is MosfetType.PMOS


def test_idle_guess_complemented(dual):
    guess = dual.dc_guess()
    assert guess["y1"] == 0.0
    assert guess["pA"] == dual.vdd


def test_no_skew_clamps_near_complementary_threshold(dual, fast_options):
    """Outputs rise together and clamp near VDD - |VTp| (the dual of the
    NMOS-threshold clamp)."""
    response = simulate_dual_sensor(dual, skew=0.0, options=fast_options)
    assert response.code == ERROR_NONE
    vtp = abs(nominal_process().pmos.vt0)
    # vmin fields hold VDD - Vmax: the clamp distance from VDD.
    assert 0.8 * vtp < response.vmin_y1 < 2.0 * vtp
    assert response.vmin_y1 == pytest.approx(response.vmin_y2, abs=0.05)


def test_phi2_late_falling_edge_gives_01(dual, fast_options):
    response = simulate_dual_sensor(dual, skew=ns(1.0), options=fast_options)
    assert response.code == ERROR_PHI2_LATE
    assert response.vmin_y1 < 0.5            # y1 rose fully
    assert response.vmin_y2 > VTH_INTERPRET  # y2 held low


def test_phi1_late_falling_edge_gives_10(dual, fast_options):
    response = simulate_dual_sensor(dual, skew=-ns(1.0), options=fast_options)
    assert response.code == ERROR_PHI1_LATE


def test_dual_sensitivity_same_band(dual, fast_options):
    """The complement detects skews in the same sub-nanosecond band."""
    small = simulate_dual_sensor(dual, skew=ns(0.03), options=fast_options)
    large = simulate_dual_sensor(dual, skew=ns(0.5), options=fast_options)
    assert small.code == ERROR_NONE
    assert large.code == ERROR_PHI2_LATE


def test_full_swing_dual_not_implemented():
    sensor = DualSkewSensor(full_swing=True)
    with pytest.raises(NotImplementedError):
        sensor.build()
