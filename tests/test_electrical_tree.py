"""Transistor/RC-level co-simulation of clock-tree paths."""

import numpy as np
import pytest

from repro.clocktree.electrical import (
    TreeNetlistBuilder,
    buffer_inverter_sizing,
    cosimulate_pair_with_sensor,
    electrical_sink_arrivals,
)
from repro.clocktree.faults import ResistiveOpen
from repro.clocktree.htree import build_h_tree
from repro.clocktree.rc import sink_delays
from repro.clocktree.tree import Buffer
from repro.devices.process import nominal_process
from repro.devices.sources import ClockSource
from repro.units import ns


@pytest.fixture(scope="module")
def tree():
    return build_h_tree(levels=2, buffer=Buffer())


@pytest.fixture(scope="module")
def pair(tree):
    sinks = sorted(s.name for s in tree.sinks())
    return sinks[0], sinks[1]


def test_buffer_sizing_matches_drive_resistance():
    process = nominal_process()
    strong = buffer_inverter_sizing(Buffer(drive_resistance=200.0), process)
    weak = buffer_inverter_sizing(Buffer(drive_resistance=800.0), process)
    assert strong.w_n == pytest.approx(4 * weak.w_n)
    assert strong.w_p > strong.w_n  # mobility compensation


def test_builder_produces_valid_netlist(tree, pair):
    clock = ClockSource(period=ns(20), slew=ns(0.2), delay=ns(2))
    builder = TreeNetlistBuilder(tree, list(pair))
    netlist = builder.build(clock)
    assert set(builder.sink_nodes) == set(pair)
    # Buffered paths contain MOSFETs; wires contain RC ladders.
    assert len(netlist.mosfets) > 0
    assert len(netlist.resistors) > len(netlist.mosfets) // 4


def test_electrical_arrivals_match_elmore_scale(tree, pair, fast_options):
    """Electrical and Elmore insertion delays agree to first order (the
    Elmore estimate is the slower, upper-bound-flavoured one)."""
    arrivals = electrical_sink_arrivals(
        tree, list(pair), options=fast_options
    )
    elmore = sink_delays(tree)
    for sink in pair:
        ratio = arrivals[sink] / elmore[sink]
        assert 0.5 < ratio <= 1.2, f"{sink}: {ratio}"


def test_electrical_symmetric_paths_have_no_skew(tree, pair, fast_options):
    arrivals = electrical_sink_arrivals(tree, list(pair), options=fast_options)
    a, b = pair
    assert arrivals[a] == pytest.approx(arrivals[b], abs=1e-12)


def test_electrical_skew_from_injected_open(tree, pair, fast_options):
    a, b = pair
    faulty = ResistiveOpen(node=b, extra_resistance=10_000.0).apply(tree)
    arrivals = electrical_sink_arrivals(faulty, [a, b], options=fast_options)
    assert arrivals[b] - arrivals[a] > ns(0.1)


def test_cosimulation_healthy_pair_no_error(tree, pair, fast_options):
    code, result, node_map = cosimulate_pair_with_sensor(
        tree, pair[0], pair[1], options=fast_options
    )
    assert code == (0, 0)
    # Sensor outputs recover high at the end of the cycle.
    assert result.wave(node_map["y1"]).final_value() > 4.5


def test_cosimulation_detects_tree_defect(tree, pair, fast_options):
    """The flagship full-stack run: generator -> buffered RC tree with a
    resistive open -> sensing circuit -> 01 error indication."""
    a, b = pair
    faulty = ResistiveOpen(node=b, extra_resistance=10_000.0).apply(tree)
    code, result, node_map = cosimulate_pair_with_sensor(
        faulty, a, b, options=fast_options
    )
    assert code == (0, 1)


def test_cosimulation_mirror_defect(tree, pair, fast_options):
    a, b = pair
    faulty = ResistiveOpen(node=a, extra_resistance=10_000.0).apply(tree)
    code, _, _ = cosimulate_pair_with_sensor(faulty, a, b, options=fast_options)
    assert code == (1, 0)


def test_off_path_branches_load_the_paths(tree, pair, fast_options):
    """Dropping the lumped side-branch loads must speed the paths up -
    i.e. the builder really accounts for them."""
    import copy

    a, b = pair
    pruned = copy.deepcopy(tree)
    keep = set()
    for name in (a, b):
        for node in pruned.path_to(pruned.node(name)):
            keep.add(id(node))
    for node in pruned.walk():
        node.children = [c for c in node.children if id(c) in keep]

    loaded = electrical_sink_arrivals(tree, [a], options=fast_options)
    unloaded = electrical_sink_arrivals(pruned, [a], options=fast_options)
    assert unloaded[a] < loaded[a]
