"""Property-based tests on the analog engine.

Randomised linear networks have exact closed-form answers; these tests pin
the engine's core numerics (stamping, DC solve, integration) against them
under hypothesis-generated topologies and values.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analog.compile import CompiledCircuit
from repro.analog.dcop import dc_operating_point
from repro.analog.engine import transient
from repro.circuit.netlist import Netlist
from repro.devices.sources import PWLSource


def ladder_netlist(resistances, v_in=5.0):
    """A series resistor ladder from a source to ground."""
    netlist = Netlist(name="ladder")
    netlist.drive_dc("in", v_in)
    previous = "in"
    for k, r in enumerate(resistances):
        nxt = "0" if k == len(resistances) - 1 else f"n{k}"
        netlist.add_resistor(f"r{k}", previous, nxt, r)
        previous = nxt
    return netlist


@settings(max_examples=40, deadline=None)
@given(
    resistances=st.lists(
        st.floats(10.0, 1e6), min_size=2, max_size=6
    ),
    v_in=st.floats(-10.0, 10.0),
)
def test_ladder_dc_matches_voltage_divider(resistances, v_in):
    """Every intermediate node sits at the exact divider voltage."""
    netlist = ladder_netlist(resistances, v_in)
    circuit = CompiledCircuit.compile(netlist)
    v = dc_operating_point(circuit)
    total = sum(resistances)
    # The engine adds a GMIN = 1e-9 S conditioning shunt per free node,
    # which loads high-impedance dividers by ~ v * GMIN * R.
    gmin_bias = abs(v_in) * 1e-9 * total * len(resistances)
    below = total
    for k in range(len(resistances) - 1):
        below -= resistances[k]
        expected = v_in * below / total
        node = circuit.node_index[f"n{k}"]
        assert v[node] == pytest.approx(
            expected, abs=1e-4 + 1e-4 * abs(v_in) + gmin_bias
        )


@settings(max_examples=30, deadline=None)
@given(
    resistances=st.lists(st.floats(100.0, 1e5), min_size=2, max_size=5),
    v_in=st.floats(0.1, 10.0),
)
def test_dc_voltages_bounded_by_sources(resistances, v_in):
    """Passivity: a resistive network cannot exceed its source range."""
    netlist = ladder_netlist(resistances, v_in)
    circuit = CompiledCircuit.compile(netlist)
    v = dc_operating_point(circuit)
    assert np.all(v[: circuit.n_free] <= v_in + 1e-6)
    assert np.all(v[: circuit.n_free] >= -1e-6)


@settings(max_examples=20, deadline=None)
@given(
    r=st.floats(1e3, 1e5),
    c=st.floats(1e-14, 1e-12),
    v_step=st.floats(0.5, 5.0),
)
def test_rc_charging_is_monotone_and_converges(r, c, v_step):
    """A first-order RC step response never overshoots and reaches the
    final value."""
    netlist = Netlist(name="rc")
    netlist.drive("in", PWLSource([0.0, 1e-12], [0.0, v_step]))
    netlist.add_resistor("r", "in", "out", r)
    netlist.add_capacitor("c", "out", "0", c)
    tau = r * c
    result = transient(netlist, t_stop=8 * tau, record=["out"])
    values = result.voltages["out"]
    assert np.all(values <= v_step * (1 + 1e-3))
    assert np.all(np.diff(values) >= -1e-6 * v_step)
    assert values[-1] == pytest.approx(v_step, rel=2e-3)


@settings(max_examples=15, deadline=None)
@given(
    r1=st.floats(1e3, 1e5),
    r2=st.floats(1e3, 1e5),
    c=st.floats(1e-14, 5e-13),
)
def test_rc_divider_final_value(r1, r2, c):
    """Driven RC divider settles to the resistive divider voltage."""
    netlist = Netlist(name="rcdiv")
    netlist.drive("in", PWLSource([0.0, 1e-12], [0.0, 5.0]))
    netlist.add_resistor("r1", "in", "mid", r1)
    netlist.add_resistor("r2", "mid", "0", r2)
    netlist.add_capacitor("c", "mid", "0", c)
    tau = (r1 * r2 / (r1 + r2)) * c
    result = transient(netlist, t_stop=10 * tau, record=["mid"])
    expected = 5.0 * r2 / (r1 + r2)
    assert result.voltages["mid"][-1] == pytest.approx(expected, rel=5e-3)


@settings(max_examples=20, deadline=None)
@given(
    scale=st.floats(0.5, 3.0),
)
def test_linearity_of_resistive_network(scale):
    """Superposition: scaling the source scales every node voltage."""
    base = ladder_netlist([1e3, 2e3, 3e3], v_in=2.0)
    scaled = ladder_netlist([1e3, 2e3, 3e3], v_in=2.0 * scale)
    cb = CompiledCircuit.compile(base)
    cs = CompiledCircuit.compile(scaled)
    vb = dc_operating_point(cb)
    vs = dc_operating_point(cs)
    for node in ("n0", "n1"):
        assert vs[cs.node_index[node]] == pytest.approx(
            scale * vb[cb.node_index[node]], rel=1e-4, abs=1e-5
        )


def test_charge_conservation_across_coupling_capacitor():
    """A floating node coupled only capacitively follows its driver with
    the capacitive divider ratio."""
    netlist = Netlist(name="capdiv")
    netlist.drive("in", PWLSource([0.0, 1e-10], [0.0, 4.0]))
    netlist.add_capacitor("cc", "in", "float", 100e-15)
    netlist.add_capacitor("cg", "float", "0", 300e-15)
    result = transient(netlist, t_stop=1e-9, record=["float"])
    # Divider: 100 / (100 + 300 + CMIN) of the 4 V step.
    assert result.voltages["float"][-1] == pytest.approx(1.0, rel=0.02)


def test_engine_handles_stiff_time_constants():
    """Two RC corners 10^4 apart in one circuit: the adaptive stepper
    resolves the fast one and still finishes the slow one."""
    netlist = Netlist(name="stiff")
    netlist.drive("in", PWLSource([0.0, 1e-12], [0.0, 1.0]))
    netlist.add_resistor("rf", "in", "fast", 1e2)
    netlist.add_capacitor("cf", "fast", "0", 1e-15)     # tau = 0.1 ps
    netlist.add_resistor("rs", "in", "slow", 1e6)
    netlist.add_capacitor("cs", "slow", "0", 1e-12)     # tau = 1 us... scaled
    result = transient(netlist, t_stop=5e-9, record=["fast", "slow"])
    assert result.voltages["fast"][-1] == pytest.approx(1.0, abs=1e-3)
    expected_slow = 1.0 - np.exp(-5e-9 / 1e-6)
    assert result.voltages["slow"][-1] == pytest.approx(
        expected_slow, abs=5e-3
    )
