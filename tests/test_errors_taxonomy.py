"""Error taxonomy: hierarchy, historical aliases, diagnostics, validation."""

from __future__ import annotations

import pickle

import pytest

from repro.circuit.netlist import Netlist
from repro.circuit.validate import NetlistError, validate
from repro.core.sensing import SkewSensor
from repro.devices.sources import clock_pair
from repro.errors import (
    MAX_STATE_NODES,
    CampaignTimeoutError,
    ConvergenceError,
    JobError,
    NonFiniteStateError,
    SimulationDiagnostics,
    SimulationError,
    StepSizeUnderflowError,
    WorkerCrashError,
    rebuild_error,
)
from repro.faults.models import BridgingFault
from repro.units import ns


# --------------------------------------------------------------------- #
# Hierarchy and historical aliases.
# --------------------------------------------------------------------- #

def test_historical_import_sites_are_aliases():
    from repro.analog import dcop
    from repro.runtime import executor

    assert dcop.ConvergenceError is ConvergenceError
    assert dcop.NonFiniteStateError is NonFiniteStateError
    assert executor.CampaignTimeoutError is CampaignTimeoutError

    import repro.runtime as runtime

    assert runtime.SimulationError is SimulationError
    assert runtime.JobError is JobError
    assert runtime.WorkerCrashError is WorkerCrashError


def test_hierarchy():
    assert issubclass(SimulationError, RuntimeError)
    assert issubclass(ConvergenceError, SimulationError)
    assert issubclass(NonFiniteStateError, ConvergenceError)
    assert issubclass(StepSizeUnderflowError, ConvergenceError)
    assert issubclass(CampaignTimeoutError, SimulationError)
    assert issubclass(CampaignTimeoutError, TimeoutError)
    assert issubclass(WorkerCrashError, SimulationError)


# --------------------------------------------------------------------- #
# Diagnostics records.
# --------------------------------------------------------------------- #

def _full_diagnostics():
    return SimulationDiagnostics(
        circuit="unit_test", sim_time=3.2e-9, newton_iteration=17,
        gmin_stage=1e-6, ladder_rung="gmin-restart",
        worst_residual_node="y1", worst_residual=4.5e-7,
        last_state={"y1": 4.9, "y2": 0.1}, extra={"note": "hello"},
    )


def test_diagnostics_dict_roundtrip():
    diag = _full_diagnostics()
    clone = SimulationDiagnostics.from_dict(diag.as_dict())
    assert clone == diag
    text = diag.describe()
    assert "unit_test" in text
    assert "gmin-restart" in text
    assert "y1" in text


def test_capture_state_truncates():
    diag = SimulationDiagnostics()
    node_index = {f"n{i:03d}": i for i in range(MAX_STATE_NODES + 20)}
    diag.capture_state(node_index, list(range(len(node_index))))
    assert len(diag.last_state) == MAX_STATE_NODES
    assert diag.last_state["n000"] == 0.0


@pytest.mark.parametrize(
    "cls", [SimulationError, ConvergenceError, NonFiniteStateError,
            StepSizeUnderflowError]
)
def test_errors_pickle_with_diagnostics(cls):
    error = cls("boom", diagnostics=_full_diagnostics())
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is cls
    assert clone.message == "boom"
    assert clone.diagnostics == error.diagnostics
    assert "unit_test" in str(clone)


def test_timeout_error_pickles_despite_multiple_inheritance():
    error = CampaignTimeoutError("late", job=None, attempts=3, elapsed=1.5)
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, TimeoutError)
    assert clone.attempts == 3
    assert clone.elapsed == 1.5


def test_rebuild_error():
    diag = _full_diagnostics().as_dict()
    error = rebuild_error("StepSizeUnderflowError", "dt underflow", diag)
    assert type(error) is StepSizeUnderflowError
    assert error.diagnostics.circuit == "unit_test"
    # Unknown names degrade to the base class (old journals must load).
    assert type(rebuild_error("FutureError", "x", None)) is SimulationError


def test_rebuild_error_restores_timeout_attributes():
    original = CampaignTimeoutError("late", job=None, attempts=2, elapsed=0.75)
    clone = rebuild_error(
        "CampaignTimeoutError", original.message,
        original.diagnostics.as_dict(),
    )
    assert isinstance(clone, CampaignTimeoutError)
    assert clone.attempts == 2
    assert clone.elapsed == 0.75


def test_job_error_record():
    record = JobError(
        index=2, job=None, error="ConvergenceError", message="no solution",
        diagnostics={"circuit": "sensor", "sim_time": 1e-9},
    )
    assert record.ok is False
    error = record.exception()
    assert isinstance(error, ConvergenceError)
    assert "sensor" in str(error)
    data = record.as_dict()
    assert data["error"] == "ConvergenceError"
    assert data["diagnostics"]["circuit"] == "sensor"


# --------------------------------------------------------------------- #
# The engine attaches diagnostics to real failures (acceptance check).
# --------------------------------------------------------------------- #

#: Tolerances no Newton update can meet: every step fails, the whole
#: escalation ladder runs, and the transient dies deterministically.
BRUTAL_OPTIONS = dict(dt_min=1e-15, dt_start=1e-13, max_newton=2, vntol=1e-30)


def test_engine_failure_carries_diagnostics():
    from repro.analog.engine import TransientOptions, transient

    sensor = SkewSensor()
    phi1, phi2 = clock_pair(
        period=ns(20), slew1=ns(0.2), slew2=ns(0.2), skew=0.0,
        delay=ns(2), vdd=sensor.vdd,
    )
    netlist = sensor.build(phi1=phi1, phi2=phi2)
    with pytest.raises(ConvergenceError) as excinfo:
        transient(netlist, t_stop=ns(1.0),
                  options=TransientOptions(**BRUTAL_OPTIONS))
    diag = excinfo.value.diagnostics
    assert diag.circuit == netlist.name
    assert diag.sim_time >= 0.0
    assert diag.last_state  # usable as a retry's initial guess
    assert netlist.name in str(excinfo.value)


def test_successful_transient_records_dcop_rung():
    from repro.analog.engine import TransientOptions, transient

    sensor = SkewSensor()
    phi1, phi2 = clock_pair(
        period=ns(20), slew1=ns(0.2), slew2=ns(0.2), skew=0.0,
        delay=ns(2), vdd=sensor.vdd,
    )
    netlist = sensor.build(phi1=phi1, phi2=phi2)
    result = transient(
        netlist, t_stop=ns(0.5), record=["y1", "y2"],
        initial=sensor.dc_guess(),
        options=TransientOptions(dt_max=200e-12, reltol=5e-3),
    )
    rungs = [name for name in result.escalations if name.startswith("dcop:")]
    assert len(rungs) == 1


# --------------------------------------------------------------------- #
# Netlist validation rejects numerically poisonous parameters.
# --------------------------------------------------------------------- #

def _rc_netlist():
    net = Netlist("taxonomy_rc")
    net.drive_dc("vin", 5.0)
    net.add_resistor("r1", "vin", "out", 1e3)
    net.add_capacitor("c1", "out", "0", 1e-12)
    return net


def test_validate_accepts_healthy_netlist():
    validate(_rc_netlist())


def test_validate_rejects_nan_resistance():
    net = _rc_netlist()
    net.add_resistor("r_bad", "vin", "out", float("nan"))
    with pytest.raises(NetlistError, match="non-finite"):
        validate(net)


def test_validate_rejects_nonpositive_resistance():
    net = _rc_netlist()
    # Resistor.__post_init__ rejects <= 0 at construction; validation
    # must also catch values mutated after the fact (fault tooling).
    net.resistors[0].resistance = -5.0
    with pytest.raises(NetlistError, match="<= 0"):
        validate(net)


def test_validate_rejects_nonfinite_capacitance():
    net = _rc_netlist()
    net.capacitors[0].capacitance = float("inf")
    with pytest.raises(NetlistError, match="non-finite"):
        validate(net)


def test_validate_rejects_nonfinite_source():
    net = _rc_netlist()
    net.drive_dc("vin", float("nan"))
    with pytest.raises(NetlistError, match="non-finite"):
        validate(net)


def test_validate_rejects_nonfinite_mosfet_geometry():
    net = SkewSensor().build()
    net.mosfets[0].w = float("nan")
    with pytest.raises(NetlistError, match="non-finite"):
        validate(net)


def test_validate_rejects_nan_bridge_resistance():
    # BridgingFault's own guard only rejects <= 0; a NaN slips through
    # construction and must be caught by netlist validation instead.
    faulty = BridgingFault("y1", "y2", float("nan")).inject(SkewSensor().build())
    with pytest.raises(NetlistError, match="non-finite"):
        validate(faulty)
