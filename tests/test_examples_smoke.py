"""Smoke tests: the fast examples run end to end.

The slower examples (chip case study, full electrical stack) are exercised
by the integration tests and benches that share their code paths; here the
two quick ones run verbatim so a packaging or API regression that breaks
`python examples/...` fails the suite.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    expected = {
        "quickstart.py",
        "clock_tree_monitoring.py",
        "testability_report.py",
        "online_self_checking.py",
        "full_stack_electrical.py",
        "chip_case_study.py",
    }
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= present


def test_quickstart_runs(capsys):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "no skew" in out
    assert "error detected        : True" in out
    assert "(0, 1)" in out and "(1, 0)" in out


def test_online_self_checking_runs(capsys):
    module = load_example("online_self_checking")
    module.main()
    out = capsys.readouterr().out
    assert "PASSES (fault masked)" in out
    assert "True" in out            # checker alarm during the noise window
    assert "scan chain" in out


def test_every_example_has_docstring_and_main():
    for path in EXAMPLES.glob("*.py"):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), f"{path.name} needs a docstring"
        assert "def main()" in source, f"{path.name} needs a main()"
        assert '__name__ == "__main__"' in source, path.name
