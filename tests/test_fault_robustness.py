"""Fault-injection robustness: campaigns survive hard solver failures.

Injects ``NodeStuckAt`` / ``TransistorStuckOn`` faults into the sensor and
runs the transients under tolerances no Newton update can satisfy, so
every evaluation dies in the solver after exhausting the escalation
ladder.  The campaign layer must finish anyway under
``on_error="collect"``, returning well-formed
:class:`~repro.errors.JobError` records whose diagnostics identify the
faulty circuit by name.
"""

from __future__ import annotations

import pytest

from repro.analog.engine import TransientOptions, transient
from repro.core.sensing import SkewSensor
from repro.devices.sources import clock_pair
from repro.errors import ConvergenceError, JobError
from repro.faults.models import NodeStuckAt, TransistorStuckOn
from repro.runtime import JobResult, SensorJob, Telemetry, run_campaign
from repro.units import ns

#: Tolerances no Newton update can meet (``vntol`` far below machine
#: epsilon with almost no iterations): every step fails, the escalation
#: ladder runs dry, and the transient dies deterministically.
BRUTAL = TransientOptions(dt_min=1e-15, dt_start=1e-13, max_newton=2,
                          vntol=1e-30)


# --------------------------------------------------------------------- #
# Module-level evaluations (picklable for the process backend).
# --------------------------------------------------------------------- #

def _faulty_transient(job, fault):
    """Simulate the sensor of ``job`` with ``fault`` injected; always fails."""
    sensor = SkewSensor(load1=job.load1, load2=job.load2)
    phi1, phi2 = clock_pair(
        period=job.period, slew1=job.slew1, slew2=job.slew2,
        skew=job.skew, delay=job.settle, vdd=sensor.vdd,
    )
    faulty = fault.inject(sensor.build(phi1=phi1, phi2=phi2))
    transient(faulty, t_stop=ns(1.0), options=BRUTAL)
    raise AssertionError("brutal tolerances are not supposed to converge")


def _evaluate_stuck_node(job):
    return _faulty_transient(job, NodeStuckAt("y1", 1))


def _evaluate_stuck_on(job):
    return _faulty_transient(job, TransistorStuckOn("e"))


def _ok(job):
    return JobResult(skew=job.skew, vmin_y1=1.0, vmin_y2=2.0, code=(0, 0),
                     steps=3)


def _evaluate_mixed(job):
    if job.skew > 0:
        return _evaluate_stuck_node(job)
    return _ok(job)


def _jobs(*skews_ns):
    return [SensorJob(skew=ns(t)) for t in skews_ns]


# --------------------------------------------------------------------- #
# Collect mode finishes the campaign and reports structured failures.
# --------------------------------------------------------------------- #

def test_stuck_at_campaign_collects_job_errors():
    jobs = _jobs(0.1, 0.4)
    telemetry = Telemetry()
    campaign = run_campaign(
        jobs, evaluate=_evaluate_stuck_node, on_error="collect", retries=0,
        telemetry=telemetry,
    )
    assert len(campaign) == len(jobs)
    assert not campaign.ok
    assert telemetry.jobs_failed == len(jobs)
    for index, record in enumerate(campaign):
        assert isinstance(record, JobError)
        assert record.index == index
        assert record.job is jobs[index]
        assert isinstance(record.exception(), ConvergenceError)
        assert "stuck-at-1" in record.diagnostics["circuit"]
        assert "sim_time" in record.diagnostics
        assert record.attempts >= 1


def test_stuck_on_campaign_collects_job_errors():
    campaign = run_campaign(
        _jobs(0.2), evaluate=_evaluate_stuck_on, on_error="collect", retries=0,
    )
    (record,) = campaign.errors
    assert "transistor e stuck-on" in record.diagnostics["circuit"]
    assert isinstance(record.exception(), ConvergenceError)


def test_mixed_campaign_keeps_order_and_collects_only_failures():
    jobs = _jobs(-0.2, 0.3, -0.1)
    campaign = run_campaign(
        jobs, evaluate=_evaluate_mixed, on_error="collect", retries=0,
    )
    assert [r.ok for r in campaign] == [True, False, True]
    (record,) = campaign.errors
    assert record.index == 1
    assert campaign[0].vmin_y1 == 1.0
    assert campaign[2].skew == jobs[2].skew


def test_raise_mode_still_aborts_with_diagnostics():
    with pytest.raises(ConvergenceError) as excinfo:
        run_campaign(_jobs(0.1), evaluate=_evaluate_stuck_node, retries=0)
    diag = excinfo.value.diagnostics
    assert "stuck-at-1" in diag.circuit
    assert diag.sim_time >= 0.0


def test_process_backend_ships_failures_across_the_pool():
    campaign = run_campaign(
        _jobs(0.1, 0.3), backend="process", max_workers=2,
        evaluate=_evaluate_stuck_node, on_error="collect", retries=0,
    )
    assert len(campaign.errors) == 2
    for record in campaign.errors:
        assert "stuck-at-1" in record.diagnostics["circuit"]
        assert isinstance(record.exception(), ConvergenceError)


# --------------------------------------------------------------------- #
# Direct engine-level check: a faulty netlist fails with its mangled
# name in the diagnostics, so the failing fault is identifiable from the
# error alone.
# --------------------------------------------------------------------- #

def test_faulty_transient_failure_names_the_fault():
    job = SensorJob(skew=ns(0.2))
    with pytest.raises(ConvergenceError) as excinfo:
        _faulty_transient(job, TransistorStuckOn("e"))
    error = excinfo.value
    assert "stuck-on" in error.diagnostics.circuit
    assert "stuck-on" in str(error)
