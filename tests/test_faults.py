"""Fault models, universe enumeration, and IDDQ machinery."""

import numpy as np
import pytest

from repro.core.sensing import SkewSensor
from repro.faults.models import (
    BridgingFault,
    NodeStuckAt,
    TransistorStuckOn,
    TransistorStuckOpen,
)
from repro.faults.universe import enumerate_faults
from repro.faults.iddq import IddqProbe, quiescent_windows


def sensor_netlist():
    netlist = SkewSensor().build()
    netlist.drive_dc("phi1", 0.0)
    netlist.drive_dc("phi2", 0.0)
    return netlist


# --------------------------------------------------------------------- #
# Fault descriptors
# --------------------------------------------------------------------- #

def test_stuck_at_injects_tie_resistor():
    netlist = sensor_netlist()
    faulty = NodeStuckAt("y1", 1).inject(netlist)
    tie = [r for r in faulty.resistors if r.name.startswith("fault_sa_")]
    assert len(tie) == 1
    assert {tie[0].a, tie[0].b} == {"y1", "vdd"}
    # Original untouched.
    assert netlist.resistors == []


def test_stuck_at_zero_ties_to_ground():
    faulty = NodeStuckAt("y2", 0).inject(sensor_netlist())
    tie = [r for r in faulty.resistors if r.name.startswith("fault_sa_")][0]
    assert {tie.a, tie.b} == {"y2", "0"}


def test_stuck_at_rejects_bad_value():
    with pytest.raises(ValueError):
        NodeStuckAt("y1", 2)


def test_stuck_open_flags_device():
    netlist = sensor_netlist()
    faulty = TransistorStuckOpen("d").inject(netlist)
    assert faulty.find_mosfet("d").stuck_open
    assert not netlist.find_mosfet("d").stuck_open


def test_stuck_on_flags_device():
    faulty = TransistorStuckOn("e").inject(sensor_netlist())
    assert faulty.find_mosfet("e").stuck_on


def test_transistor_fault_unknown_name():
    with pytest.raises(KeyError):
        TransistorStuckOpen("zz").inject(sensor_netlist())


def test_bridge_injects_resistor():
    faulty = BridgingFault("y1", "y2").inject(sensor_netlist())
    bridge = [r for r in faulty.resistors if r.name.startswith("fault_br_")][0]
    assert bridge.resistance == 100.0


def test_bridge_validation():
    with pytest.raises(ValueError):
        BridgingFault("y1", "y1")
    with pytest.raises(ValueError):
        BridgingFault("y1", "y2", resistance=0.0)


def test_fault_kinds_and_descriptions():
    assert NodeStuckAt("y1", 1).kind == "stuck-at"
    assert TransistorStuckOpen("a").kind == "stuck-open"
    assert TransistorStuckOn("a").kind == "stuck-on"
    assert BridgingFault("y1", "y2").kind == "bridging"
    assert "y1" in NodeStuckAt("y1", 1).describe()
    assert "100" in BridgingFault("y1", "y2").describe()


# --------------------------------------------------------------------- #
# Universe enumeration
# --------------------------------------------------------------------- #

def test_universe_counts_on_sensor():
    """The sensor has 6 circuit nodes and 10 transistors: 12 stuck-ats,
    10 stuck-opens, 10 stuck-ons."""
    universe = enumerate_faults(sensor_netlist())
    assert len(universe.stuck_at) == 12
    assert len(universe.stuck_open) == 10
    assert len(universe.stuck_on) == 10
    assert len(universe) == len(universe.all_faults())


def test_universe_bridges_skip_channel_adjacent_pairs():
    universe = enumerate_faults(sensor_netlist())
    pairs = {frozenset((b.node_a, b.node_b)) for b in universe.bridging}
    # nA-y1 are joined by transistors b and c: not a distinct bridge.
    assert frozenset(("nA", "y1")) not in pairs
    # y1-y2 is the paper's explicit hard case: present.
    assert frozenset(("y1", "y2")) in pairs
    # Clock inputs participate as signal nodes.
    assert frozenset(("phi1", "phi2")) in pairs


def test_universe_bridge_count_on_sensor():
    """8 signal nodes -> C(8,2)=28 pairs minus the 4 channel-adjacent."""
    universe = enumerate_faults(sensor_netlist())
    assert len(universe.bridging) == 24


def test_universe_custom_node_sets():
    universe = enumerate_faults(
        sensor_netlist(),
        stuck_at_nodes=["y1"],
        bridge_nodes=["y1", "y2", "nA"],
        skip_connected_bridges=False,
    )
    assert len(universe.stuck_at) == 2
    assert len(universe.bridging) == 3


def test_universe_by_kind_rejects_unknown():
    universe = enumerate_faults(sensor_netlist())
    with pytest.raises(KeyError):
        universe.by_kind("aging")


def test_all_faults_injectable():
    """Every enumerated fault injects into a valid netlist copy."""
    netlist = sensor_netlist()
    for fault in enumerate_faults(netlist).all_faults():
        faulty = fault.inject(netlist)
        assert faulty is not netlist


# --------------------------------------------------------------------- #
# IDDQ
# --------------------------------------------------------------------- #

def test_quiescent_windows_construction():
    windows = quiescent_windows([0.0, 10.0, 20.0], fraction=0.2)
    assert windows == [(8.0, 10.0), (18.0, 20.0)]


def test_iddq_probe_measures_max_window_mean():
    from repro.analog.engine import TransientResult

    times = np.linspace(0.0, 10.0, 11)
    current = np.zeros(11)
    current[8:] = 5e-5  # elevated quiescent current late in the run
    result = TransientResult(
        times=times, voltages={}, source_currents={"vdd": current}
    )
    probe = IddqProbe(windows=((0.0, 2.0), (8.5, 10.0)), threshold=10e-6)
    assert probe.measure(result) == pytest.approx(5e-5)
    assert probe.failing(result)


def test_iddq_probe_passes_clean_current():
    from repro.analog.engine import TransientResult

    times = np.linspace(0.0, 10.0, 11)
    result = TransientResult(
        times=times, voltages={}, source_currents={"vdd": np.full(11, 1e-9)}
    )
    probe = IddqProbe(windows=((0.0, 10.0),))
    assert not probe.failing(result)


# --------------------------------------------------------------------- #
# Layout hardening (refs. [11] / [14])
# --------------------------------------------------------------------- #

def test_layout_hardening_removes_designated_faults():
    from repro.faults.universe import apply_layout_hardening

    universe = enumerate_faults(sensor_netlist())
    hardened = apply_layout_hardening(universe)
    opens = {f.transistor for f in hardened.stuck_open}
    assert "c" not in opens and "h" not in opens
    assert len(hardened.stuck_open) == 8
    bridges = {frozenset((b.node_a, b.node_b)) for b in hardened.bridging}
    assert frozenset(("y1", "y2")) not in bridges
    assert len(hardened.bridging) == len(universe.bridging) - 1
    # Untouched categories are preserved.
    assert hardened.stuck_at == universe.stuck_at
    assert hardened.stuck_on == universe.stuck_on


def test_layout_hardening_lifts_stuck_open_coverage_to_full():
    """With the two layout-avoidable stuck-opens gone, the remaining
    stuck-open universe is 100 % covered - the paper's ref.-[11] payoff."""
    from repro.faults.universe import apply_layout_hardening
    from repro.testing.testability import (
        ClockStimulus,
        analyze_sensor_testability,
    )

    universe = apply_layout_hardening(enumerate_faults(sensor_netlist()))
    universe.stuck_at = []
    universe.stuck_on = []
    universe.bridging = []
    report = analyze_sensor_testability(
        stimulus=ClockStimulus(cycles=1),
        universe=universe,
        check_skew_masking=False,
    )
    assert report.coverage("stuck-open") == 1.0
