"""Error indicator, two-rail checker, and scan path."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing.checker import TwoRailChecker, two_rail_cell
from repro.testing.indicator import VALID_CODES, ErrorIndicator
from repro.testing.scanpath import ScanPath


# --------------------------------------------------------------------- #
# Indicator
# --------------------------------------------------------------------- #

def test_indicator_ignores_valid_codes():
    ind = ErrorIndicator()
    assert not ind.observe_code((0, 0))
    assert not ind.observe_code((1, 1))
    assert not ind.latched


def test_indicator_latches_on_error_code():
    ind = ErrorIndicator()
    ind.observe_code((0, 1))
    assert ind.latched
    assert ind.first_error == (0, 1)
    assert ind.direction == "phi2"


def test_indicator_latch_persists_through_valid_codes():
    """The whole point of the indicator: the sensor's static indication
    clears at the falling edge, the latch must not."""
    ind = ErrorIndicator()
    ind.observe_code((1, 0))
    ind.observe_code((0, 0))
    ind.observe_code((1, 1))
    assert ind.latched
    assert ind.direction == "phi1"


def test_indicator_keeps_first_error():
    ind = ErrorIndicator()
    ind.observe_code((0, 1))
    ind.observe_code((1, 0))
    assert ind.first_error == (0, 1)


def test_indicator_reset():
    ind = ErrorIndicator()
    ind.observe_code((0, 1))
    ind.reset()
    assert not ind.latched
    assert ind.first_error is None
    assert ind.history == []
    assert ind.direction is None


def test_indicator_voltage_interface():
    ind = ErrorIndicator(threshold=2.75)
    assert not ind.observe_voltages(1.0, 1.0)   # (0,0)
    assert ind.observe_voltages(1.0, 4.9)        # (0,1) -> latch
    assert ind.history == [(0, 0), (0, 1)]


def test_valid_code_space():
    assert VALID_CODES == ((0, 0), (1, 1))


# --------------------------------------------------------------------- #
# Two-rail checker
# --------------------------------------------------------------------- #

def test_cell_truth_table():
    """The cell output is complementary iff both inputs are."""
    for a0, a1, b0, b1 in product((0, 1), repeat=4):
        z0, z1 = two_rail_cell((a0, a1), (b0, b1))
        inputs_ok = (a0 != a1) and (b0 != b1)
        assert (z0 != z1) == inputs_ok


def test_checker_no_alarm_on_complementary_inputs():
    checker = TwoRailChecker(n_inputs=4)
    pairs = [(0, 1), (1, 0), (0, 1), (1, 0)]
    assert not checker.alarm(pairs)


def test_checker_alarm_on_single_bad_pair():
    checker = TwoRailChecker(n_inputs=4)
    for bad_index in range(4):
        pairs = [(0, 1)] * 4
        pairs[bad_index] = (1, 1)
        assert checker.alarm(pairs), f"pair {bad_index} not propagated"


def test_checker_handles_odd_input_count():
    checker = TwoRailChecker(n_inputs=3)
    assert not checker.alarm([(0, 1), (1, 0), (0, 1)])
    assert checker.alarm([(0, 1), (0, 0), (1, 0)])


def test_checker_single_input_passthrough():
    checker = TwoRailChecker(n_inputs=1)
    assert not checker.alarm([(1, 0)])
    assert checker.alarm([(1, 1)])


def test_checker_input_count_enforced():
    checker = TwoRailChecker(n_inputs=2)
    with pytest.raises(ValueError):
        checker.alarm([(0, 1)])
    with pytest.raises(ValueError):
        TwoRailChecker(n_inputs=0)


def test_checker_is_self_testing():
    """Any single cell stuck at a constant pair is exposed by some
    complementary (fault-free) input combination - the self-checking
    property the paper relies on for on-line use."""
    n = 4
    n_cells = 3  # balanced tree over 4 pairs
    complementary = [(0, 1), (1, 0)]
    for cell in range(n_cells):
        for forced in ((0, 0), (1, 1), (0, 1), (1, 0)):
            checker = TwoRailChecker(n_inputs=n, stuck_cells={cell: forced})
            exposed = False
            for combo in product(complementary, repeat=n):
                healthy = TwoRailChecker(n_inputs=n)
                if checker.evaluate(list(combo)) != healthy.evaluate(list(combo)):
                    exposed = True
                    break
            if forced in complementary:
                # A stuck *complementary* pair is only visible when it
                # disagrees with the expected value - covered above.
                continue
            assert exposed, f"cell {cell} stuck at {forced} never exposed"


def test_encode_sensor_code():
    assert TwoRailChecker.encode_sensor_code((0, 0)) == (0, 1)
    assert TwoRailChecker.encode_sensor_code((1, 1)) == (1, 0)
    assert TwoRailChecker.encode_sensor_code((0, 1)) == (0, 0)
    assert TwoRailChecker.encode_sensor_code((1, 0)) == (1, 1)


@settings(max_examples=40, deadline=None)
@given(
    codes=st.lists(
        st.sampled_from([(0, 0), (1, 1), (0, 1), (1, 0)]),
        min_size=1, max_size=8,
    )
)
def test_checker_alarm_iff_any_error_code(codes):
    """End-to-end property: the encoded checker tree alarms exactly when
    at least one sensor emitted an error code."""
    checker = TwoRailChecker(n_inputs=len(codes))
    pairs = [TwoRailChecker.encode_sensor_code(c) for c in codes]
    has_error = any(c in ((0, 1), (1, 0)) for c in codes)
    assert checker.alarm(pairs) == has_error


# --------------------------------------------------------------------- #
# Scan path
# --------------------------------------------------------------------- #

def _chain(n):
    path = ScanPath()
    indicators = [ErrorIndicator(name=f"i{k}") for k in range(n)]
    for ind in indicators:
        path.attach(ind)
    return path, indicators


def test_scan_capture_and_shift():
    path, indicators = _chain(4)
    indicators[1].observe_code((0, 1))
    indicators[3].observe_code((1, 0))
    assert path.read() == [0, 1, 0, 1]


def test_scan_shift_in_clears_register():
    path, indicators = _chain(3)
    indicators[0].observe_code((0, 1))
    path.capture()
    out = path.shift_out(scan_in=[0, 0, 0])
    assert out == [1, 0, 0]
    assert path.shift_out() == [0, 0, 0]


def test_scan_flagged_names():
    path, indicators = _chain(3)
    indicators[2].observe_code((0, 1))
    assert path.flagged() == ["i2"]


def test_scan_reset_all():
    path, indicators = _chain(2)
    indicators[0].observe_code((0, 1))
    path.reset_all()
    assert path.read() == [0, 0]
    assert not indicators[0].latched


def test_scan_length():
    path, _ = _chain(5)
    assert len(path) == 5
