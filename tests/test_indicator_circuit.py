"""Transistor-level latching error indicator co-simulated with the sensor."""

import pytest

from repro.analog.engine import transient
from repro.core.sensing import SkewSensor
from repro.devices.sources import PWLSource, clock_pair
from repro.testing.indicator_circuit import IndicatorCircuit
from repro.units import fF, ns


def build(skew, prech_release=ns(1.5)):
    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    phi1, phi2 = clock_pair(ns(20), ns(0.2), ns(0.2), skew=skew, delay=ns(2))
    netlist = sensor.build(phi1=phi1, phi2=phi2)
    indicator = IndicatorCircuit()
    flag = indicator.build_into(netlist, y1="y1", y2="y2", prech="prech")
    netlist.drive(
        "prech",
        PWLSource([0.0, prech_release - ns(0.1), prech_release], [0, 0, 5]),
    )
    initial = dict(sensor.dc_guess())
    initial.update(indicator.dc_guess())
    return netlist, indicator, flag, initial


def simulate(skew, fast_options, t_stop=ns(22)):
    netlist, indicator, flag, initial = build(skew)
    result = transient(
        netlist,
        t_stop=t_stop,
        record=["y1", "y2", flag, indicator.storage],
        initial=initial,
        options=fast_options,
    )
    return result, indicator, flag


def test_indicator_stays_quiet_without_skew(fast_options):
    result, indicator, flag = simulate(0.0, fast_options)
    err = result.wave(flag)
    assert err.window_max(ns(2), ns(22)) < 1.0


def test_indicator_keeper_recovers_transition_glitch(fast_options):
    """The simultaneous output transitions of normal operation disturb the
    dynamic storage node; the keeper must restore it above the output
    inverter threshold."""
    result, indicator, flag = simulate(0.0, fast_options)
    st = result.wave(indicator.storage)
    assert st.window_min(ns(2), ns(22)) > 2.3   # dips but never flips
    assert st.final_value() > 4.5               # fully restored


def test_indicator_latches_on_skew(fast_options):
    result, indicator, flag = simulate(ns(1.0), fast_options)
    err = result.wave(flag)
    assert err.at(ns(6)) > 4.0


def test_indicator_holds_after_sensor_recovers(fast_options):
    """The sensor's static indication ends at the falling clock edge; the
    indicator's whole purpose is to keep the flag up past that point."""
    result, indicator, flag = simulate(ns(1.0), fast_options)
    err = result.wave(flag)
    y1 = result.wave("y1")
    assert y1.final_value() > 4.5        # sensor recovered
    assert err.at(ns(21)) > 4.0          # flag still latched


def test_indicator_symmetric_for_both_directions(fast_options):
    pos, _, flag_p = simulate(ns(1.0), fast_options)
    neg, _, flag_n = simulate(-ns(1.0), fast_options)
    assert pos.wave(flag_p).at(ns(15)) > 4.0
    assert neg.wave(flag_n).at(ns(15)) > 4.0


def test_precharge_resets_the_flag(fast_options):
    """A second precharge pulse clears a latched error."""
    netlist, indicator, flag, initial = build(ns(1.0))
    netlist.drive(
        "prech",
        PWLSource(
            [0.0, ns(1.4), ns(1.5), ns(16.0), ns(16.1), ns(18.0), ns(18.1)],
            [0, 0, 5, 5, 0, 0, 5],
        ),
    )
    result = transient(
        netlist,
        t_stop=ns(21),
        record=[flag],
        initial=initial,
        options=fast_options,
    )
    err = result.wave(flag)
    assert err.at(ns(10)) > 4.0    # latched during the event
    assert err.at(ns(20)) < 1.0    # cleared by the reset strobe


def test_two_indicators_coexist_via_prefix():
    netlist = SkewSensor(parasitics=False).build()
    netlist.drive_dc("phi1", 0.0)
    netlist.drive_dc("phi2", 0.0)
    netlist.drive_dc("prech", 5.0)
    a = IndicatorCircuit(prefix="indA")
    b = IndicatorCircuit(prefix="indB")
    flag_a = a.build_into(netlist)
    flag_b = b.build_into(netlist)
    assert flag_a != flag_b
    from repro.circuit.validate import validate
    validate(netlist)  # no duplicate names


def test_output_and_storage_names():
    ind = IndicatorCircuit(prefix="x")
    assert ind.output == "x_err"
    assert ind.storage == "x_st"
    assert "x_st" in ind.dc_guess()
