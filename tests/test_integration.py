"""Cross-subsystem integration tests.

These bind the reproduction together: clock-tree faults produce skews, the
transistor-level sensor sees those skews, indicators latch, the scan path /
checker read them out, and conventional logic testing demonstrably misses
what the scheme catches.
"""

import numpy as np
import pytest

from repro.clocktree.faults import BufferSlowdown, ResistiveOpen
from repro.clocktree.htree import build_h_tree
from repro.clocktree.rc import sink_delays
from repro.clocktree.tree import Buffer
from repro.core.response import ERROR_PHI2_LATE, simulate_sensor
from repro.core.sensing import SkewSensor
from repro.logicsim.synth import at_speed_test, build_pipeline
from repro.testing.scheme import ClockTestingScheme
from repro.units import fF, ns


@pytest.fixture(scope="module")
def tree():
    return build_h_tree(levels=2, buffer=Buffer())


def test_tree_fault_to_electrical_detection(tree, fast_options):
    """End to end: inject a resistive open, compute the pair skew with the
    Elmore substrate, drive the transistor-level sensor with that skew,
    and observe the paper's 01 error indication."""
    nominal = sink_delays(tree)
    victim = sorted(nominal)[0]
    reference = sorted(nominal)[1]
    faulty = sink_delays(
        ResistiveOpen(node=victim, extra_resistance=10_000.0).apply(tree)
    )
    # phi1 = reference sink, phi2 = victim sink (now late).
    skew = (faulty[victim] - faulty[reference]) - (
        nominal[victim] - nominal[reference]
    )
    assert skew > ns(0.12), "fault chosen to exceed sensor sensitivity"

    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    response = simulate_sensor(sensor, skew=skew, options=fast_options)
    assert response.code == ERROR_PHI2_LATE


def test_conventional_test_misses_what_scheme_catches(tree, fast_options):
    """The paper's motivating gap, quantified: a clock-path fault whose
    skew the at-speed logic test masks is still flagged by the scheme."""
    # Clock-path fault: one branch buffer slows by 30 %.
    branch = next(
        n.name for n in tree.walk()
        if n.buffer is not None and n.parent is not None
    )
    fault = BufferSlowdown(node=branch, factor=1.3)
    nominal = sink_delays(tree)
    faulty = sink_delays(fault.apply(tree))
    offsets = {s: faulty[s] - nominal[s] for s in nominal}
    delta = max(offsets.values())
    assert delta > ns(0.12)

    # Conventional at-speed testing of a pipeline whose capture flop gets
    # the delayed clock: masked (the test passes).
    circuit, flops = build_pipeline(
        [ns(3), ns(3)], clock_offsets=[0.0, delta, 0.0]
    )
    result = at_speed_test(circuit, flops, period=ns(10))
    assert result["passed"], "delay fault testing is blind to this"

    # The sensing scheme sees it.
    scheme = ClockTestingScheme.plan(
        tree, tau_min=ns(0.12), max_distance=8e-3, top_k=6
    )
    observations = scheme.observe(fault.apply(tree))
    assert any(o.flagged for o in observations)
    assert scheme.online_alarm()


def test_offline_and_online_readout_agree(tree):
    scheme = ClockTestingScheme.plan(
        tree, tau_min=ns(0.12), max_distance=8e-3, top_k=6
    )
    victim = scheme.placements[0].pair.sink_b
    fault = ResistiveOpen(node=victim, extra_resistance=10_000.0)
    scheme.observe(fault.apply(scheme.tree))
    scan_bits = scheme.scan_out()
    assert (1 in scan_bits) == scheme.online_alarm() or scheme.online_alarm()
    assert 1 in scan_bits


def test_sensor_detects_perturbation_induced_skew(fast_options):
    """Process perturbation of a symmetric tree creates real skews; the
    sensor flags those beyond its sensitivity."""
    from repro.clocktree.faults import perturb_tree

    tree = build_h_tree(levels=2, buffer=Buffer())
    rng = np.random.default_rng(21)
    worst = 0.0
    for _ in range(5):
        delays = sink_delays(perturb_tree(tree, rng, relative_variation=0.2))
        values = sorted(delays.values())
        worst = max(worst, values[-1] - values[0])
    assert worst > ns(0.12)
    sensor = SkewSensor()
    response = simulate_sensor(sensor, skew=worst, options=fast_options)
    assert response.error_detected
