"""Intermittent faults and the on-line vs off-line detection argument."""

import numpy as np
import pytest

from repro.clocktree.faults import ResistiveOpen
from repro.clocktree.htree import build_h_tree
from repro.clocktree.intermittent import (
    IntermittentFault,
    monitoring_campaign,
)
from repro.clocktree.tree import Buffer
from repro.testing.scheme import ClockTestingScheme
from repro.units import ns


@pytest.fixture()
def scheme():
    tree = build_h_tree(levels=2, buffer=Buffer())
    return ClockTestingScheme.plan(
        tree, tau_min=ns(0.12), max_distance=8e-3, top_k=4
    )


def make_fault(scheme, **kwargs):
    victim = scheme.placements[0].pair.sink_a
    return IntermittentFault(
        fault=ResistiveOpen(node=victim, extra_resistance=9000.0), **kwargs
    )


def test_activation_probability_validated():
    fault = ResistiveOpen(node="x", extra_resistance=1.0)
    with pytest.raises(ValueError):
        IntermittentFault(fault=fault, activation_probability=1.5)


def test_deterministic_schedule(scheme):
    fault = make_fault(scheme, active_cycles=frozenset({2, 5}))
    assert not fault.is_active(0)
    assert fault.is_active(2)
    assert fault.is_active(5)
    assert "cycles [2, 5]" in fault.describe()


def test_bernoulli_activation_reproducible(scheme):
    fault = make_fault(scheme, activation_probability=0.5)
    a = [fault.is_active(k, np.random.default_rng(7)) for k in range(5)]
    b = [fault.is_active(k, np.random.default_rng(7)) for k in range(5)]
    assert a == b


def test_campaign_detects_scheduled_burst(scheme):
    fault = make_fault(scheme, active_cycles=frozenset({3, 4}))
    result = monitoring_campaign(scheme, fault, cycles=8)
    assert result.online_first_detection == 3
    assert result.online_alarm_cycles == [3, 4]
    assert result.latched_at_end
    assert result.active_cycles == [3, 4]


def test_offline_session_misses_inactive_window(scheme):
    """The paper's argument: an off-line test session between activations
    sees a healthy tree; the concurrent monitor catches the burst."""
    fault = make_fault(scheme, active_cycles=frozenset({5}))
    result = monitoring_campaign(
        scheme, fault, cycles=8, offline_test_cycle=0
    )
    assert not result.offline_session_detects
    assert result.online_detects
    assert result.latched_at_end


def test_offline_session_lucky_timing(scheme):
    fault = make_fault(scheme, active_cycles=frozenset({0}))
    result = monitoring_campaign(
        scheme, fault, cycles=4, offline_test_cycle=0
    )
    assert result.offline_session_detects


def test_never_active_fault_never_flags(scheme):
    fault = make_fault(scheme, active_cycles=frozenset())
    result = monitoring_campaign(scheme, fault, cycles=5)
    assert not result.online_detects
    assert not result.latched_at_end


def test_campaign_validates_cycle_count(scheme):
    fault = make_fault(scheme, active_cycles=frozenset({0}))
    with pytest.raises(ValueError):
        monitoring_campaign(scheme, fault, cycles=0)


def test_detection_probability_grows_with_observation(scheme):
    """Longer on-line observation catches rarer faults: the monotone
    advantage conventional one-shot testing cannot have."""
    fault = make_fault(scheme, activation_probability=0.25)
    hits_short = hits_long = 0
    for seed in range(12):
        rng = np.random.default_rng(seed)
        short = monitoring_campaign(scheme, fault, cycles=2, rng=rng)
        hits_short += short.online_detects
        rng = np.random.default_rng(seed)
        long = monitoring_campaign(scheme, fault, cycles=12, rng=rng)
        hits_long += long.online_detects
    assert hits_long >= hits_short
    assert hits_long >= 10  # P(miss 12 cycles) = 0.75^12 ~ 3 %
