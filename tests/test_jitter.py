"""Jittery clock source and jitter false-alarm analysis."""

import numpy as np
import pytest

from repro.devices.sources import jittery_clock
from repro.montecarlo.jitter import (
    JitterTrial,
    false_alarm_rate,
    simulate_jittery_cycles,
)
from repro.core.sensing import SkewSensor
from repro.units import fF, ns


def test_jittery_clock_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        jittery_clock(ns(20), ns(0.2), 0, 1e-12, rng)
    with pytest.raises(ValueError):
        jittery_clock(ns(20), ns(0.2), 2, -1e-12, rng)


def test_zero_jitter_matches_ideal_edges():
    rng = np.random.default_rng(0)
    clk = jittery_clock(
        ns(20), ns(0.2), 3, rms_jitter=0.0, rng=rng, delay=ns(2)
    )
    for k in range(3):
        edge = ns(2) + k * ns(20)
        assert clk.value(edge) == pytest.approx(0.0, abs=1e-9)
        assert clk.value(edge + ns(0.2)) == pytest.approx(5.0, abs=1e-9)
        assert clk.value(edge + ns(5)) == pytest.approx(5.0)
        assert clk.value(edge + ns(15)) == pytest.approx(0.0)


def test_jitter_moves_edges_within_clip():
    rng = np.random.default_rng(1)
    period = ns(20)
    clk = jittery_clock(
        period, ns(0.2), 5, rms_jitter=ns(0.5), rng=rng, delay=ns(2)
    )
    for k in range(5):
        nominal = ns(2) + k * period
        crossing = None
        # Find the actual mid-swing crossing near the nominal edge.
        for dt in np.linspace(-period / 6, period / 6, 2001):
            if clk.value(nominal + dt) >= 2.5:
                crossing = dt
                break
        assert crossing is not None
        assert abs(crossing) <= period / 8 + ns(0.2)


def test_jitter_reproducible_with_seed():
    a = jittery_clock(ns(20), ns(0.2), 3, ns(0.1),
                      np.random.default_rng(42), delay=ns(2))
    b = jittery_clock(ns(20), ns(0.2), 3, ns(0.1),
                      np.random.default_rng(42), delay=ns(2))
    for t in np.linspace(0, ns(60), 50):
        assert a.value(t) == b.value(t)


def test_static_skew_combines_with_jitter():
    rng = np.random.default_rng(2)
    clk = jittery_clock(
        ns(20), ns(0.2), 2, rms_jitter=0.0, rng=rng,
        delay=ns(2), skew=ns(1),
    )
    assert clk.value(ns(2.5)) == pytest.approx(0.0, abs=1e-9)  # not risen yet
    assert clk.value(ns(3.5)) == pytest.approx(5.0)


def test_trial_false_alarm_property():
    assert JitterTrial(codes=((0, 0), (0, 1))).false_alarm
    assert not JitterTrial(codes=((0, 0), (1, 1))).false_alarm


def test_quiet_clocks_raise_no_alarm(fast_options):
    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    trial = simulate_jittery_cycles(
        sensor, rms_jitter=1e-12, rng=np.random.default_rng(3),
        cycles=2, options=fast_options,
    )
    assert not trial.false_alarm
    assert len(trial.codes) == 2


def test_huge_jitter_raises_alarm(fast_options):
    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    trial = simulate_jittery_cycles(
        sensor, rms_jitter=ns(0.5), rng=np.random.default_rng(4),
        cycles=2, options=fast_options,
    )
    assert trial.false_alarm


def test_false_alarm_rate_bounds(fast_options):
    rate = false_alarm_rate(1e-12, trials=2, options=fast_options)
    assert rate == 0.0
    rate = false_alarm_rate(ns(0.5), trials=2, options=fast_options)
    assert rate == 1.0
