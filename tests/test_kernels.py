"""Kernel-layer tests: scatter plan, golden equivalence, telemetry.

The compiled kernels (:mod:`repro.analog.kernels`,
:mod:`repro.batch.kernels`) replace the original dense
``device_currents`` assembly and the per-iteration dense solve.  This
module pins them three ways:

* unit tests of :func:`build_mosfet_scatter` (index targets, incidence
  signs, degenerate self-connected devices);
* golden *assembly* equivalence: kernel output vs
  :func:`reference_device_currents` (the pre-change dense body, kept
  verbatim) on the sensing circuit, a stuck-on faulted variant and a
  buffered clock-tree electrical netlist;
* golden *waveform* equivalence: a full transient under the cached
  modified-Newton policy (``jacobian_policy="reuse"``) vs the dense
  per-iteration path (``"dense"``) stays within 1 uV on every node, and
  the reuse run reports nonzero ``jacobian_reuses``.
"""

import numpy as np
import pytest

from repro.analog.compile import CompiledCircuit
from repro.analog.engine import TransientOptions, transient
from repro.analog.kernels import (
    KernelStats,
    ScalarKernel,
    build_mosfet_scatter,
    reference_device_currents,
)
from repro.batch.compile import compile_batch
from repro.clocktree.electrical import TreeNetlistBuilder
from repro.clocktree.htree import build_h_tree
from repro.clocktree.tree import Buffer
from repro.core.sensing import SkewSensor
from repro.devices.sources import ClockSource, clock_pair
from repro.faults.models import TransistorStuckOn
from repro.units import fF, ns

FAST = TransientOptions(dt_max=ns(0.2), reltol=5e-3)

#: Acceptance bar on reuse-vs-dense waveform agreement, volts.
WAVEFORM_TOL = 1e-6


def _sensing_netlist(skew=0.15):
    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    phi1, phi2 = clock_pair(
        period=ns(20.0), slew1=ns(0.2), slew2=ns(0.2),
        skew=ns(skew), delay=ns(2.0), vdd=sensor.vdd,
    )
    return sensor.build(phi1=phi1, phi2=phi2), sensor


def _stuck_on_netlist():
    netlist, _ = _sensing_netlist()
    name = netlist.mosfets[0].name
    return TransistorStuckOn(transistor=name).inject(netlist)


def _clocktree_netlist():
    tree = build_h_tree(levels=1, buffer=Buffer())
    sinks = sorted(s.name for s in tree.sinks())[:2]
    clock = ClockSource(period=ns(20), slew=ns(0.2), delay=ns(2))
    return TreeNetlistBuilder(tree, sinks).build(clock)


# --------------------------------------------------------------------- #
# Scatter-plan unit tests.
# --------------------------------------------------------------------- #
def test_scatter_indices_target_drain_and_source_rows():
    m_d = np.array([0, 2])
    m_g = np.array([1, 1])
    m_s = np.array([3, 4])
    n = 5
    f_idx, j_idx, incidence = build_mosfet_scatter(m_d, m_g, m_s, n)
    assert f_idx.tolist() == [0, 2, 3, 4]
    # Row-major flat targets in stamp order (d,d) (d,g) (d,s) (s,d)
    # (s,g) (s,s), devices varying fastest within each stamp block.
    expected = np.concatenate([
        m_d * n + m_d, m_d * n + m_g, m_d * n + m_s,
        m_s * n + m_d, m_s * n + m_g, m_s * n + m_s,
    ])
    assert np.array_equal(j_idx, expected)
    assert incidence.shape == (n, 2)
    assert incidence[0, 0] == 1.0 and incidence[3, 0] == -1.0
    assert incidence[2, 1] == 1.0 and incidence[4, 1] == -1.0
    assert np.count_nonzero(incidence) == 4


def test_scatter_self_connected_device_cancels():
    f_idx, j_idx, incidence = build_mosfet_scatter(
        np.array([1]), np.array([0]), np.array([1]), 3
    )
    # Drain tied to source: the incidence column must cancel to zero so
    # the device contributes no net node current.
    assert np.all(incidence[:, 0] == 0.0)
    assert f_idx.tolist() == [1, 1]


def test_scatter_empty_circuit():
    f_idx, j_idx, incidence = build_mosfet_scatter(
        np.array([], dtype=int), np.array([], dtype=int),
        np.array([], dtype=int), 4
    )
    assert f_idx.size == 0 and j_idx.size == 0
    assert incidence.shape == (4, 0)


# --------------------------------------------------------------------- #
# Golden assembly equivalence vs the pre-change dense path.
# --------------------------------------------------------------------- #
@pytest.fixture(
    scope="module",
    params=["sensing", "stuck_on", "clocktree"],
)
def compiled(request):
    if request.param == "sensing":
        netlist, _ = _sensing_netlist()
    elif request.param == "stuck_on":
        netlist = _stuck_on_netlist()
    else:
        netlist = _clocktree_netlist()
    return CompiledCircuit.compile(netlist)


def _probe_voltages(circuit, n_probes=25, seed=7):
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 6.0, size=(n_probes, circuit.n_total))


def test_scalar_kernel_matches_reference(compiled):
    kernel = ScalarKernel(compiled)
    for v in _probe_voltages(compiled):
        f_ref, j_ref = reference_device_currents(compiled, v)
        f, j = kernel.eval(v)
        np.testing.assert_allclose(f, f_ref, rtol=1e-12, atol=1e-15)
        np.testing.assert_allclose(j, j_ref, rtol=1e-12, atol=1e-15)


def test_scalar_kernel_residual_only_matches_reference(compiled):
    kernel = ScalarKernel(compiled)
    for v in _probe_voltages(compiled, n_probes=5, seed=11):
        f_ref, _ = reference_device_currents(compiled, v, with_jacobian=False)
        f, j = kernel.eval(v, with_jacobian=False)
        assert j is None
        np.testing.assert_allclose(f, f_ref, rtol=1e-12, atol=1e-15)


def test_kernel_reads_model_cards_per_eval(compiled):
    # Connectivity is frozen at kernel build; parameters are not - the
    # fault/poison injection tests mutate them post-compile.
    kernel = compiled.kernel()
    v = _probe_voltages(compiled, n_probes=1, seed=3)[0]
    f_before, _ = kernel.eval(v)
    f_before = f_before.copy()
    original = compiled.m_beta.copy()
    try:
        compiled.m_beta = compiled.m_beta * 2.0
        f_after, _ = kernel.eval(v)
        if compiled.m_d.size:
            assert not np.allclose(f_after, f_before)
        ref, _ = reference_device_currents(compiled, v, with_jacobian=False)
        np.testing.assert_allclose(f_after, ref, rtol=1e-12, atol=1e-15)
    finally:
        compiled.m_beta = original


def test_batch_kernel_single_sample_is_bit_identical_to_scalar():
    netlist, sensor = _sensing_netlist()
    scalar = CompiledCircuit.compile(netlist)
    batch = compile_batch([netlist])
    for v in _probe_voltages(scalar, n_probes=10, seed=5):
        f_s, j_s = scalar.kernel().eval(v)
        f_b, j_b = batch.kernel().eval(v[None, :])
        # Exact equality: the B == 1 batch must add in the scalar's
        # summation order (the engines' accept decisions depend on it).
        assert np.array_equal(f_b[0], f_s)
        assert np.array_equal(j_b[0], j_s)


def test_batch_kernel_heterogeneous_matches_per_sample_scalar():
    netlists = []
    for skew in (0.0, 0.2, 0.4):
        netlist, _ = _sensing_netlist(skew)
        netlists.append(netlist)
    batch = compile_batch(netlists)
    rng = np.random.default_rng(17)
    v = rng.uniform(-1.0, 6.0, size=(3, batch.n_total))
    f_b, j_b = batch.kernel().eval(v)
    for b, circuit in enumerate(batch.circuits):
        f_s, j_s = circuit.kernel().eval(v[b])
        assert np.array_equal(f_b[b], f_s)
        assert np.array_equal(j_b[b], j_s)


# --------------------------------------------------------------------- #
# Golden waveform equivalence: cached-factorization policy vs dense.
# --------------------------------------------------------------------- #
def _run_policies(netlist, initial=None):
    runs = {}
    for policy in ("dense", "reuse"):
        options = TransientOptions(
            dt_max=FAST.dt_max, reltol=FAST.reltol, jacobian_policy=policy
        )
        runs[policy] = transient(
            netlist, t_stop=ns(12.0), initial=initial, options=options
        )
    return runs["dense"], runs["reuse"]


def _assert_waveforms_close(dense, reuse, tol=WAVEFORM_TOL):
    t_dense = np.asarray(dense.times)
    t_reuse = np.asarray(reuse.times)
    for node in dense.voltages:
        v_dense = np.asarray(dense.voltages[node])
        v_reuse = np.asarray(reuse.voltages[node])
        if np.array_equal(t_dense, t_reuse):
            worst = np.max(np.abs(v_dense - v_reuse))
        else:  # grids microshifted: compare on the dense grid
            worst = np.max(np.abs(np.interp(t_dense, t_reuse, v_reuse)
                                  - v_dense))
        assert worst <= tol, f"{node}: {worst:.3e} V off the dense path"


def test_golden_waveforms_sensing():
    netlist, sensor = _sensing_netlist()
    dense, reuse = _run_policies(netlist, initial=sensor.dc_guess())
    _assert_waveforms_close(dense, reuse)
    assert reuse.kernel_stats["jacobian_reuses"] > 0
    assert dense.kernel_stats["jacobian_reuses"] == 0


def test_golden_waveforms_stuck_on_fault():
    dense, reuse = _run_policies(_stuck_on_netlist())
    _assert_waveforms_close(dense, reuse)
    assert reuse.kernel_stats["jacobian_reuses"] > 0


def test_golden_waveforms_clocktree():
    dense, reuse = _run_policies(_clocktree_netlist())
    _assert_waveforms_close(dense, reuse)
    assert reuse.kernel_stats["jacobian_reuses"] > 0


def test_reuse_policy_factors_less_than_dense():
    netlist, sensor = _sensing_netlist()
    dense, reuse = _run_policies(netlist, initial=sensor.dc_guess())
    assert reuse.kernel_stats["factorizations"] < \
        dense.kernel_stats["factorizations"]
    assert dense.kernel_stats["factorizations"] == \
        dense.kernel_stats["newton_iterations"]


# --------------------------------------------------------------------- #
# Source-plan and telemetry units.
# --------------------------------------------------------------------- #
def test_source_voltages_into_dynamic_split():
    netlist, _ = _sensing_netlist()
    circuit = CompiledCircuit.compile(netlist)
    t = ns(2.1)
    full = circuit.source_voltages(t)
    scratch = circuit.source_voltages(0.0).copy()
    circuit.source_voltages_into(t, scratch, dynamic_only=True)
    np.testing.assert_array_equal(scratch, full)


def test_batch_source_voltages_into_dynamic_split():
    netlist, _ = _sensing_netlist()
    batch = compile_batch([netlist, netlist.copy()])
    t = ns(2.1)
    full = batch.source_voltages(t)
    scratch = batch.source_voltages(0.0).copy()
    batch.source_voltages_into(t, scratch, dynamic_only=True)
    np.testing.assert_array_equal(scratch, full)


def test_kernel_stats_merge_and_dict():
    a = KernelStats(assembles=2, factorizations=1, jacobian_reuses=3,
                    newton_iterations=4, assemble_s=0.5)
    b = KernelStats(assembles=1, refactorizations=2, solve_s=0.25)
    a.merge(b)
    data = a.as_dict()
    assert data["assembles"] == 3
    assert data["refactorizations"] == 2
    assert data["jacobian_reuses"] == 3
    assert data["assemble_s"] == 0.5 and data["solve_s"] == 0.25


def test_telemetry_aggregates_kernel_counters():
    from repro.runtime.telemetry import Telemetry

    tel = Telemetry()
    tel.record_job("job[0]", wall=0.1, steps=10,
                   kernel={"newton_iterations": 7, "jacobian_reuses": 4,
                           "factorizations": 3, "solve_s": 0.01})
    tel.record_kernel({"newton_iterations": 3, "jacobian_reuses": 1,
                       "factorizations": 2, "solve_s": 0.02})
    other = Telemetry()
    other.record_kernel({"newton_iterations": 5, "factorizations": 5})
    tel.merge(other)
    engine = tel.as_dict()["engine"]["kernel"]
    assert engine["newton_iterations"] == 15
    assert engine["jacobian_reuses"] == 5
    assert engine["factorizations"] == 10
    assert engine["solve_s"] == pytest.approx(0.03)
    assert isinstance(engine["newton_iterations"], int)
    assert "jacobian reuse(s)" in tel.summary()
