"""Gate-level stuck-at injection and TSC verification of the checker."""

from itertools import product

import pytest

from repro.logicsim.checker_gates import CheckerCircuit
from repro.logicsim.circuit import LogicCircuit
from repro.logicsim.faults import (
    NetStuckAt,
    enumerate_net_faults,
    evaluate_with_fault,
    verify_tsc,
)
from repro.logicsim.gates import GateType


def test_stuck_at_value_validated():
    with pytest.raises(ValueError):
        NetStuckAt("x", 2)


def test_fault_enumeration_covers_all_nets():
    circuit = LogicCircuit()
    circuit.add_gate("g", GateType.AND, ["a", "b"], "z", 1e-9)
    faults = enumerate_net_faults(circuit)
    assert len(faults) == 6  # a, b, z each stuck 0/1
    assert NetStuckAt("z", 1) in faults


def test_evaluate_without_fault():
    circuit = LogicCircuit()
    circuit.add_gate("g", GateType.AND, ["a", "b"], "z", 1e-9)
    assert evaluate_with_fault(circuit, {"a": 1, "b": 1}, ["z"]) == (1,)
    assert evaluate_with_fault(circuit, {"a": 1, "b": 0}, ["z"]) == (0,)


def test_evaluate_with_output_fault():
    circuit = LogicCircuit()
    circuit.add_gate("g", GateType.AND, ["a", "b"], "z", 1e-9)
    out = evaluate_with_fault(
        circuit, {"a": 1, "b": 1}, ["z"], fault=NetStuckAt("z", 0)
    )
    assert out == (0,)


def test_evaluate_with_internal_fault_propagates():
    circuit = LogicCircuit()
    circuit.add_gate("g1", GateType.AND, ["a", "b"], "m", 1e-9)
    circuit.add_gate("g2", GateType.OR, ["m", "c"], "z", 1e-9)
    out = evaluate_with_fault(
        circuit, {"a": 0, "b": 0, "c": 0}, ["z"], fault=NetStuckAt("m", 1)
    )
    assert out == (1,)


def _code_inputs(n):
    complementary = [(0, 1), (1, 0)]
    inputs = []
    for combo in product(complementary, repeat=n):
        assignment = {}
        for k, (r0, r1) in enumerate(combo):
            assignment[f"in{k}_0"] = r0
            assignment[f"in{k}_1"] = r1
        inputs.append(assignment)
    return inputs


def test_checker_is_totally_self_checking():
    """The classic result (Carter & Schneider): the two-rail checker tree
    is TSC for single stuck-ats under the full code space - the property
    the paper's on-line mode relies on."""
    checker = CheckerCircuit(n=2)
    report = verify_tsc(
        checker.circuit, _code_inputs(2), ("out_0", "out_1")
    )
    assert report.checked_faults > 10
    assert report.is_fault_secure
    assert report.is_self_testing
    assert report.is_tsc


def test_checker_three_pairs_tsc():
    checker = CheckerCircuit(n=3)
    report = verify_tsc(
        checker.circuit, _code_inputs(3), ("out_0", "out_1")
    )
    assert report.is_tsc


def test_reduced_code_space_breaks_self_testing():
    """With only one code input applied, some faults are never exposed -
    TSC holds only under sufficient input diversity."""
    checker = CheckerCircuit(n=2)
    report = verify_tsc(
        checker.circuit, _code_inputs(2)[:1], ("out_0", "out_1")
    )
    assert not report.is_self_testing
    assert report.untested_faults


def test_verify_tsc_rejects_non_code_inputs():
    checker = CheckerCircuit(n=2)
    bad = {"in0_0": 1, "in0_1": 1, "in1_0": 0, "in1_1": 1}
    with pytest.raises(ValueError):
        verify_tsc(checker.circuit, [bad], ("out_0", "out_1"))


def test_verify_tsc_rejects_empty_inputs():
    checker = CheckerCircuit(n=2)
    with pytest.raises(ValueError):
        verify_tsc(checker.circuit, [], ("out_0", "out_1"))


def test_custom_fault_list():
    checker = CheckerCircuit(n=2)
    only = [NetStuckAt("out_0", 1)]
    report = verify_tsc(
        checker.circuit, _code_inputs(2), ("out_0", "out_1"), faults=only
    )
    assert report.checked_faults == 1
    assert report.is_tsc  # an output rail stuck-at is exposed by codes
