"""Gate-level simulator: gates, flops, event ordering, pipelines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logicsim.circuit import LogicCircuit
from repro.logicsim.flipflop import DFlipFlop
from repro.logicsim.gates import Gate, GateType
from repro.logicsim.synth import at_speed_test, build_pipeline, delay_chain
from repro.units import ns


# --------------------------------------------------------------------- #
# Gates
# --------------------------------------------------------------------- #

def test_gate_truth_tables():
    cases = {
        GateType.AND: [((0, 0), 0), ((1, 0), 0), ((1, 1), 1)],
        GateType.OR: [((0, 0), 0), ((1, 0), 1), ((1, 1), 1)],
        GateType.NAND: [((1, 1), 0), ((0, 1), 1)],
        GateType.NOR: [((0, 0), 1), ((1, 0), 0)],
        GateType.XOR: [((0, 1), 1), ((1, 1), 0)],
        GateType.XNOR: [((0, 1), 0), ((1, 1), 1)],
    }
    for gtype, rows in cases.items():
        gate = Gate("g", gtype, ("a", "b"), "z", 1e-9)
        for inputs, expected in rows:
            assert gate.evaluate(inputs) == expected, gtype


def test_unary_gates():
    assert Gate("n", GateType.NOT, ("a",), "z", 1e-9).evaluate([0]) == 1
    assert Gate("b", GateType.BUF, ("a",), "z", 1e-9).evaluate([1]) == 1


def test_gate_arity_enforced():
    with pytest.raises(ValueError):
        Gate("g", GateType.NOT, ("a", "b"), "z", 1e-9)
    with pytest.raises(ValueError):
        Gate("g", GateType.AND, ("a",), "z", 1e-9)


def test_gate_negative_delay_rejected():
    with pytest.raises(ValueError):
        Gate("g", GateType.BUF, ("a",), "z", -1e-9)


@settings(max_examples=30, deadline=None)
@given(bits=st.lists(st.integers(0, 1), min_size=2, max_size=6))
def test_demorgan_property(bits):
    nand = Gate("g1", GateType.NAND, tuple("abcdef"[: len(bits)]), "z", 1e-9)
    org = Gate("g2", GateType.OR, tuple("abcdef"[: len(bits)]), "z", 1e-9)
    inverted = [1 - b for b in bits]
    assert nand.evaluate(bits) == org.evaluate(inverted)


# --------------------------------------------------------------------- #
# Flip-flop timing checks
# --------------------------------------------------------------------- #

def test_flop_sample_time_includes_offset():
    ff = DFlipFlop(name="f", d="d", q="q", clock_offset=ns(0.5))
    assert ff.sample_time(ns(10)) == pytest.approx(ns(10.5))


def test_setup_violation_window():
    ff = DFlipFlop(name="f", d="d", q="q", setup=ns(0.1), hold=ns(0.05))
    v = ff.check_window(ns(10), last_d_change=ns(9.95))
    assert v is not None and v.kind == "setup"
    assert ff.check_window(ns(10), last_d_change=ns(9.8)) is None


def test_hold_violation_window():
    ff = DFlipFlop(name="f", d="d", q="q", setup=ns(0.1), hold=ns(0.05))
    v = ff.check_window(ns(10), last_d_change=ns(10.02))
    assert v is not None and v.kind == "hold"


def test_violation_description():
    ff = DFlipFlop(name="f", d="d", q="q")
    v = ff.check_window(ns(10), last_d_change=ns(9.95))
    assert "setup" in v.describe()
    assert "f" in v.describe()


def test_flop_rejects_negative_timing():
    with pytest.raises(ValueError):
        DFlipFlop(name="f", d="d", q="q", setup=-1e-12)


# --------------------------------------------------------------------- #
# Event-driven circuit
# --------------------------------------------------------------------- #

def test_gate_propagation_delay():
    circuit = LogicCircuit()
    circuit.add_gate("inv", GateType.NOT, ["a"], "z", ns(1))
    trace = circuit.simulate({"a": [(ns(5), 1)]}, clock_edges=[], t_end=ns(10))
    assert trace.value_at("z", ns(4.0)) == 1   # settled initial NOT(0)
    assert trace.value_at("z", ns(5.5)) == 1   # input edge still propagating
    assert trace.value_at("z", ns(6.5)) == 0   # one gate delay later


def test_output_cannot_have_two_drivers():
    circuit = LogicCircuit()
    circuit.add_gate("g1", GateType.BUF, ["a"], "z", ns(1))
    with pytest.raises(ValueError):
        circuit.add_gate("g2", GateType.BUF, ["b"], "z", ns(1))
    with pytest.raises(ValueError):
        circuit.add_flop(DFlipFlop(name="f", d="d", q="z"))


def test_primary_inputs_detected():
    circuit = LogicCircuit()
    circuit.add_gate("g", GateType.AND, ["a", "b"], "z", ns(1))
    assert circuit.primary_inputs() == ["a", "b"]


def test_flop_samples_on_edge():
    circuit = LogicCircuit()
    circuit.add_flop(DFlipFlop(name="f", d="d", q="q", clk_to_q=ns(0.2)))
    stimuli = {"d": [(ns(3), 1)]}
    trace = circuit.simulate(stimuli, clock_edges=[ns(2), ns(5)], t_end=ns(8))
    assert trace.value_at("q", ns(4)) == 0      # sampled 0 at 2 ns
    assert trace.value_at("q", ns(6)) == 1      # sampled 1 at 5 ns
    assert trace.sampled["f"] == [(ns(2), 0), (ns(5), 1)]


def test_flop_edge_coincident_data_uses_old_value():
    circuit = LogicCircuit()
    circuit.add_flop(DFlipFlop(name="f", d="d", q="q"))
    trace = circuit.simulate(
        {"d": [(ns(2), 1)]}, clock_edges=[ns(2)], t_end=ns(4)
    )
    assert trace.sampled["f"] == [(ns(2), 0)]


def test_setup_violation_reported_in_trace():
    circuit = LogicCircuit()
    circuit.add_flop(
        DFlipFlop(name="f", d="d", q="q", setup=ns(0.5), hold=ns(0.1))
    )
    trace = circuit.simulate(
        {"d": [(ns(4.8), 1)]}, clock_edges=[ns(5)], t_end=ns(6)
    )
    assert any(v.kind == "setup" for v in trace.violations)


def test_hold_violation_reported_in_trace():
    circuit = LogicCircuit()
    circuit.add_flop(
        DFlipFlop(name="f", d="d", q="q", setup=ns(0.1), hold=ns(0.5))
    )
    trace = circuit.simulate(
        {"d": [(ns(5.2), 1)]}, clock_edges=[ns(5)], t_end=ns(6)
    )
    assert any(v.kind == "hold" for v in trace.violations)


def test_clock_offset_shifts_sampling():
    circuit = LogicCircuit()
    circuit.add_flop(
        DFlipFlop(name="f", d="d", q="q", clock_offset=ns(1.0))
    )
    # Data arrives between nominal edge and delayed sampling instant.
    trace = circuit.simulate(
        {"d": [(ns(5.3), 1)]}, clock_edges=[ns(5)], t_end=ns(8)
    )
    (t_sample, sampled), = trace.sampled["f"]
    assert t_sample == pytest.approx(ns(6.0))
    assert sampled == 1  # delayed flop sees new data


def test_transition_count():
    circuit = LogicCircuit()
    circuit.add_gate("inv", GateType.NOT, ["a"], "z", ns(0.1))
    trace = circuit.simulate(
        {"a": [(ns(1), 1), (ns(2), 0), (ns(3), 1)]}, clock_edges=[], t_end=ns(5)
    )
    assert trace.transition_count("a") == 3


def test_unknown_stimulus_net_rejected():
    circuit = LogicCircuit()
    circuit.add_gate("g", GateType.BUF, ["a"], "z", ns(1))
    with pytest.raises(KeyError):
        circuit.simulate({"bogus": [(0.0, 1)]}, clock_edges=[], t_end=ns(1))


# --------------------------------------------------------------------- #
# Synthetic pipelines (Sec.-1 motivation)
# --------------------------------------------------------------------- #

def test_delay_chain_total_delay():
    circuit = LogicCircuit()
    delay_chain(circuit, "a", "z", ns(1.3), stage_delay=ns(0.25))
    trace = circuit.simulate({"a": [(ns(2), 1)]}, clock_edges=[], t_end=ns(6))
    t_out = None
    for t, v in trace.changes["z"]:
        if v == 1 and t > 0:
            t_out = t
            break
    assert t_out == pytest.approx(ns(3.3), abs=1e-12)


def test_pipeline_passes_at_speed_when_healthy():
    circuit, flops = build_pipeline([ns(3), ns(3)])
    result = at_speed_test(circuit, flops, period=ns(10))
    assert result["passed"]
    assert result["violations"] == []


def test_pipeline_fails_when_path_too_slow():
    circuit, flops = build_pipeline([ns(12), ns(3)])
    result = at_speed_test(circuit, flops, period=ns(10))
    assert not result["passed"]


def test_clock_delay_fault_is_masked():
    """The paper's Sec.-1 claim: a delayed flip-flop's response is masked
    by its delayed sampling - the at-speed test still passes."""
    circuit, flops = build_pipeline(
        [ns(3), ns(3)], clock_offsets=[0.0, ns(2.0), 0.0]
    )
    result = at_speed_test(circuit, flops, period=ns(10))
    assert result["passed"], "conventional testing must miss this fault"


def test_large_clock_delay_finally_fails():
    """Only when the stolen downstream slack is exhausted does the
    conventional test notice anything."""
    circuit, flops = build_pipeline(
        [ns(3), ns(3)], clock_offsets=[0.0, ns(8.0), 0.0]
    )
    result = at_speed_test(circuit, flops, period=ns(10))
    assert not result["passed"]


def test_pipeline_offset_count_validated():
    with pytest.raises(ValueError):
        build_pipeline([ns(1)], clock_offsets=[0.0, 0.0, 0.0])
