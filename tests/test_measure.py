"""Derived waveform measurements."""

import numpy as np
import pytest

from repro.analog.measure import (
    crossing_time,
    delay_between,
    logic_value,
    skew_between,
)
from repro.analog.waveform import Waveform


def ramp(t0, t1, lo=0.0, hi=5.0, name="r"):
    return Waveform(
        times=np.array([0.0, t0, t1, t1 + 1.0]),
        values=np.array([lo, lo, hi, hi]),
        name=name,
    )


def test_crossing_time_wrapper():
    w = ramp(1.0, 2.0)
    assert crossing_time(w, 2.5) == pytest.approx(1.5)


def test_delay_between_simple():
    cause = ramp(1.0, 2.0)
    effect = ramp(2.0, 3.0)
    assert delay_between(cause, effect, 2.5) == pytest.approx(1.0)


def test_delay_between_searches_after_cause():
    """An effect crossing *before* the cause crossing is ignored."""
    cause = ramp(2.0, 3.0)
    early_effect = ramp(0.5, 1.0)
    assert delay_between(cause, early_effect, 2.5) is None


def test_delay_between_none_without_cause_crossing():
    flat = Waveform(times=np.array([0.0, 1.0]), values=np.array([0.0, 0.0]))
    effect = ramp(1.0, 2.0)
    assert delay_between(flat, effect, 2.5) is None


def test_skew_between_sign_convention():
    """Positive skew = second signal lags (the paper's tau)."""
    a = ramp(1.0, 1.2)
    b = ramp(1.5, 1.7)
    assert skew_between(a, b) == pytest.approx(0.5)
    assert skew_between(b, a) == pytest.approx(-0.5)


def test_skew_between_falling_edges():
    a = Waveform(times=np.array([0.0, 1.0, 1.2, 5.0]), values=np.array([5, 5, 0, 0.0]))
    b = Waveform(times=np.array([0.0, 2.0, 2.2, 5.0]), values=np.array([5, 5, 0, 0.0]))
    assert skew_between(a, b, rising=False) == pytest.approx(1.0)


def test_skew_none_when_signal_never_crosses():
    a = ramp(1.0, 1.2)
    flat = Waveform(times=np.array([0.0, 5.0]), values=np.array([0.0, 0.0]))
    assert skew_between(a, flat) is None


def test_logic_value_threshold():
    assert logic_value(2.8, 2.75) == 1
    assert logic_value(2.7, 2.75) == 0
    assert logic_value(2.75, 2.75) == 0  # strictly above flags 1
