"""Cross-model agreement: behavioural scheme vs electrical ground truth.

The Fig.-6 campaigns run on the calibrated behavioural sensor model
(skew vs ``tau_min``); these tests sweep randomised tree faults and check
that, away from the threshold's immediate neighbourhood, the behavioural
verdict always matches the transistor-level sensor simulated with the
same pair skew.
"""

import numpy as np
import pytest

from repro.clocktree.faults import CrosstalkCoupling, ResistiveOpen
from repro.clocktree.htree import build_h_tree
from repro.clocktree.rc import sink_delays
from repro.clocktree.tree import Buffer
from repro.core.response import simulate_sensor
from repro.core.sensing import SkewSensor
from repro.core.sensitivity import extract_tau_min
from repro.testing.scheme import ClockTestingScheme
from repro.units import fF, ns


@pytest.fixture(scope="module")
def setup(fast_options):
    tree = build_h_tree(levels=2, buffer=Buffer())
    tau_min = extract_tau_min(fF(160), tolerance=ns(0.005), options=fast_options)
    scheme = ClockTestingScheme.plan(
        tree, tau_min=tau_min, max_distance=8e-3, top_k=2
    )
    return tree, tau_min, scheme


FAULT_CASES = [
    ("open-2k", lambda victim: ResistiveOpen(victim, 2_000.0)),
    ("open-9k", lambda victim: ResistiveOpen(victim, 9_000.0)),
    ("open-20k", lambda victim: ResistiveOpen(victim, 20_000.0)),
    ("xtalk-300f", lambda victim: CrosstalkCoupling(victim, 300e-15)),
    ("xtalk-1200f", lambda victim: CrosstalkCoupling(victim, 1200e-15)),
]


@pytest.mark.parametrize("label,make_fault", FAULT_CASES)
def test_behavioural_matches_electrical(setup, fast_options, label, make_fault):
    tree, tau_min, scheme = setup
    placement = scheme.placements[0]
    victim = placement.pair.sink_b
    fault = make_fault(victim)

    delays = sink_delays(fault.apply(tree))
    skew = delays[placement.pair.sink_b] - delays[placement.pair.sink_a]

    # Skip the ambiguous band where both models legitimately dither.
    if abs(abs(skew) - tau_min) < 0.25 * tau_min:
        pytest.skip("skew inside the threshold's ambiguity band")

    behavioural = ClockTestingScheme._behavioural_code(skew, tau_min)
    response = simulate_sensor(
        SkewSensor(load1=fF(160), load2=fF(160)), skew=skew,
        options=fast_options,
    )
    assert behavioural == response.code, (
        f"{label}: skew {skew:.3e}, behavioural {behavioural}, "
        f"electrical {response.code}"
    )


def test_agreement_on_random_perturbations(setup, fast_options):
    """Random process-variation trees: the two models agree on every pair
    whose skew is clear of the ambiguity band."""
    from repro.clocktree.faults import perturb_tree

    tree, tau_min, scheme = setup
    rng = np.random.default_rng(17)
    checked = 0
    for _ in range(4):
        delays = sink_delays(perturb_tree(tree, rng, relative_variation=0.2))
        placement = scheme.placements[0]
        skew = delays[placement.pair.sink_b] - delays[placement.pair.sink_a]
        if abs(abs(skew) - tau_min) < 0.25 * tau_min:
            continue
        behavioural = ClockTestingScheme._behavioural_code(skew, tau_min)
        response = simulate_sensor(
            SkewSensor(load1=fF(160), load2=fF(160)), skew=skew,
            options=fast_options,
        )
        assert behavioural == response.code
        checked += 1
    assert checked >= 2, "too few clear-band samples; widen the trial set"
