"""Monte Carlo sampling and Tab.-1 classification logic."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.montecarlo.analysis import (
    ErrorProbabilities,
    ScatterPoint,
    error_probabilities,
    scatter_analysis,
)
from repro.montecarlo.sampling import sample_population
from repro.units import fF, ns


def test_population_size_and_reproducibility():
    a = sample_population(5, fF(160), rng=np.random.default_rng(1))
    b = sample_population(5, fF(160), rng=np.random.default_rng(1))
    assert len(a) == 5
    assert a[0].load1 == b[0].load1
    assert a[3].slew2 == b[3].slew2


def test_population_rejects_empty():
    with pytest.raises(ValueError):
        sample_population(0, fF(160))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_sample_bounds(seed):
    """Loads stay inside the +/-15 % band, slews inside [0.1, 0.4] ns."""
    samples = sample_population(
        8, fF(160), rng=np.random.default_rng(seed)
    )
    for s in samples:
        assert fF(160) * 0.85 <= s.load1 <= fF(160) * 1.15
        assert fF(160) * 0.85 <= s.load2 <= fF(160) * 1.15
        assert ns(0.1) <= s.slew1 <= ns(0.4)
        assert ns(0.1) <= s.slew2 <= ns(0.4)


def test_loads_and_slews_independent():
    """Asymmetric conditions: load1 != load2 and slew1 != slew2 in general."""
    samples = sample_population(20, fF(160), rng=np.random.default_rng(2))
    assert any(s.load1 != s.load2 for s in samples)
    assert any(s.slew1 != s.slew2 for s in samples)


# --------------------------------------------------------------------- #
# Classification (pure logic, synthetic points)
# --------------------------------------------------------------------- #

def pt(skew, vmin):
    return ScatterPoint(skew=skew, vmin=vmin, sample_index=0)


def test_error_probabilities_clean_population():
    tau_min = ns(0.1)
    points = [
        pt(ns(0.05), 1.0),   # small skew, low vmin: correct
        pt(ns(0.05), 2.0),
        pt(ns(0.3), 4.0),    # large skew, flagged: correct
        pt(ns(0.3), 4.5),
    ]
    probs = error_probabilities(points, fF(160), tau_min)
    assert probs.p_loose == 0.0
    assert probs.p_false == 0.0
    assert probs.n_loose_trials == 2
    assert probs.n_false_trials == 2


def test_error_probabilities_counts_misses_and_false_alarms():
    tau_min = ns(0.1)
    points = [
        pt(ns(0.3), 2.0),    # real skew missed -> loose
        pt(ns(0.3), 4.0),
        pt(ns(0.05), 3.0),   # tolerated skew flagged -> false
        pt(ns(0.05), 1.0),
    ]
    probs = error_probabilities(points, fF(160), tau_min)
    assert probs.p_loose == 0.5
    assert probs.p_false == 0.5


def test_error_probabilities_guard_band_excludes_ambiguous():
    tau_min = ns(0.1)
    points = [pt(ns(0.1), 3.0), pt(ns(0.3), 4.0)]
    probs = error_probabilities(points, fF(160), tau_min, guard_band=ns(0.02))
    assert probs.n_false_trials == 0
    assert math.isnan(probs.p_false)
    assert probs.n_loose_trials == 1


def test_error_probabilities_row_format():
    probs = ErrorProbabilities(
        nominal_load=fF(160), tau_min=ns(0.12),
        p_loose=0.01, p_false=0.02, n_loose_trials=10, n_false_trials=10,
    )
    row = probs.as_row()
    assert "160" in row and "0.010" in row and "0.020" in row


def test_scatter_point_flags_error():
    assert pt(0.0, 3.0).flags_error()
    assert not pt(0.0, 2.0).flags_error()


# --------------------------------------------------------------------- #
# End-to-end on a tiny population (electrical)
# --------------------------------------------------------------------- #

def test_scatter_analysis_small_population(fast_options):
    samples = sample_population(2, fF(160), rng=np.random.default_rng(3))
    points = scatter_analysis(
        samples, skews=[0.0, ns(0.5)], options=fast_options
    )
    assert len(points) == 4
    by_skew = {}
    for p in points:
        by_skew.setdefault(p.skew, []).append(p.vmin)
    # No-skew points clamp low; 0.5 ns skew points read as errors.
    assert all(v < 2.75 for v in by_skew[0.0])
    assert all(v > 2.75 for v in by_skew[ns(0.5)])


# --------------------------------------------------------------------- #
# Parallel execution
# --------------------------------------------------------------------- #

def test_parallel_matches_serial(fast_options):
    from repro.montecarlo.analysis import scatter_analysis
    from repro.montecarlo.parallel import scatter_analysis_parallel

    samples = sample_population(3, fF(160), rng=np.random.default_rng(9))
    skews = [0.0, ns(0.4)]
    serial = scatter_analysis(samples, skews, options=fast_options)
    parallel = scatter_analysis_parallel(
        samples, skews, options=fast_options, n_workers=2
    )
    assert len(parallel) == len(serial)
    for a, b in zip(serial, parallel):
        assert a.sample_index == b.sample_index
        assert a.skew == b.skew
        assert a.vmin == pytest.approx(b.vmin, abs=1e-9)


def test_parallel_single_worker_path(fast_options):
    from repro.montecarlo.parallel import scatter_analysis_parallel

    samples = sample_population(2, fF(160), rng=np.random.default_rng(10))
    points = scatter_analysis_parallel(
        samples, [ns(0.4)], options=fast_options, n_workers=1
    )
    assert len(points) == 2
    assert all(p.vmin > 2.75 for p in points)


def test_default_workers_positive():
    from repro.montecarlo.parallel import default_workers

    assert default_workers() >= 1
