"""Level-1 MOSFET model: regions, continuity, derivatives, device object."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.mosfet import Mosfet, MosfetType, level1_ids
from repro.devices.process import nominal_process

VT, BETA, LAM = 0.75, 1e-3, 0.02


def ids(vgs, vds):
    return level1_ids(np.array(vgs), np.array(vds), VT, BETA, LAM)[0]


def test_cutoff_region_zero_current():
    assert ids(0.5, 3.0) == 0.0
    assert ids(VT, 3.0) == 0.0


def test_saturation_current_value():
    vgs, vds = 3.0, 4.0
    expected = 0.5 * BETA * (vgs - VT) ** 2 * (1 + LAM * vds)
    assert np.isclose(ids(vgs, vds), expected)


def test_triode_current_value():
    vgs, vds = 3.0, 0.5
    vov = vgs - VT
    expected = BETA * (vov * vds - 0.5 * vds**2) * (1 + LAM * vds)
    assert np.isclose(ids(vgs, vds), expected)


def test_current_continuous_at_saturation_boundary():
    vgs = 3.0
    vds = vgs - VT
    below = ids(vgs, vds - 1e-9)
    above = ids(vgs, vds + 1e-9)
    assert np.isclose(below, above, rtol=1e-6)


def test_current_continuous_at_cutoff_boundary():
    assert ids(VT + 1e-9, 2.0) < 1e-12


@settings(max_examples=100, deadline=None)
@given(
    vgs=st.floats(0.0, 5.0),
    vds=st.floats(0.0, 5.0),
)
def test_current_non_negative(vgs, vds):
    assert ids(vgs, vds) >= 0.0


@settings(max_examples=60, deadline=None)
@given(
    vgs=st.floats(0.0, 5.0),
    vds1=st.floats(0.0, 5.0),
    vds2=st.floats(0.0, 5.0),
)
def test_current_monotone_in_vds(vgs, vds1, vds2):
    lo, hi = sorted((vds1, vds2))
    assert ids(vgs, lo) <= ids(vgs, hi) + 1e-15


@settings(max_examples=60, deadline=None)
@given(
    vds=st.floats(0.01, 5.0),
    vgs1=st.floats(0.0, 5.0),
    vgs2=st.floats(0.0, 5.0),
)
def test_current_monotone_in_vgs(vds, vgs1, vgs2):
    lo, hi = sorted((vgs1, vgs2))
    assert ids(lo, vds) <= ids(hi, vds) + 1e-15


@settings(max_examples=50, deadline=None)
@given(vgs=st.floats(0.0, 5.0), vds=st.floats(0.0, 5.0))
def test_derivatives_match_finite_differences(vgs, vds):
    """gm and gds agree with numerical differentiation away from the
    region boundaries."""
    h = 1e-6
    vov = vgs - VT
    # Skip points within 10*h of a region boundary.
    if abs(vov) < 10 * h or abs(vds - vov) < 10 * h:
        return
    i0, gm, gds = level1_ids(
        np.array(vgs), np.array(vds), VT, BETA, LAM
    )
    i_gp = ids(vgs + h, vds)
    i_dp = ids(vgs, vds + h)
    assert np.isclose(gm, (i_gp - i0) / h, rtol=1e-3, atol=1e-12)
    assert np.isclose(gds, (i_dp - i0) / h, rtol=1e-3, atol=1e-12)


def test_vectorised_evaluation_matches_scalar():
    vgs = np.array([0.0, 1.0, 3.0, 5.0])
    vds = np.array([1.0, 0.2, 4.0, 0.1])
    batch = level1_ids(vgs, vds, VT, BETA, LAM)[0]
    singles = [ids(g, d) for g, d in zip(vgs, vds)]
    assert np.allclose(batch, singles)


# --------------------------------------------------------------------- #
# Mosfet device object
# --------------------------------------------------------------------- #

def _make(mtype=MosfetType.NMOS, **kwargs):
    card = nominal_process().polarity(mtype is MosfetType.PMOS)
    defaults = dict(
        name="m1", drain="d", gate="g", source="s",
        mtype=mtype, w=2e-6, l=1.2e-6, card=card,
    )
    defaults.update(kwargs)
    return Mosfet(**defaults)


def test_beta_scales_with_geometry():
    narrow = _make(w=2e-6)
    wide = _make(w=4e-6)
    assert np.isclose(wide.beta, 2 * narrow.beta)


def test_vt_magnitude_positive_for_pmos():
    m = _make(mtype=MosfetType.PMOS)
    assert m.vt_magnitude > 0


def test_polarity_signs():
    assert MosfetType.NMOS.sign == 1
    assert MosfetType.PMOS.sign == -1


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        _make(w=0.0)
    with pytest.raises(ValueError):
        _make(l=-1e-6)


def test_conflicting_fault_flags_rejected():
    with pytest.raises(ValueError):
        _make(stuck_open=True, stuck_on=True)


def test_parasitic_estimates_positive():
    m = _make()
    assert m.gate_capacitance > 0
    assert m.junction_capacitance > 0


def test_nodes_tuple():
    assert _make().nodes() == ("d", "g", "s")
