"""Netlist construction, queries, copies, and validation."""

import pytest

from repro.circuit.netlist import GROUND, Netlist
from repro.circuit.validate import NetlistError, validate
from repro.devices.mosfet import MosfetType
from repro.devices.process import nominal_process
from repro.devices.sources import DCSource


def _inverter():
    p = nominal_process()
    net = Netlist(name="inv")
    net.drive_dc("vdd", 5.0)
    net.drive_dc("in", 0.0)
    net.add_mosfet("mp", "out", "in", "vdd", MosfetType.PMOS, 4e-6, 1.2e-6, p.pmos)
    net.add_mosfet("mn", "out", "in", "0", MosfetType.NMOS, 2e-6, 1.2e-6, p.nmos)
    net.add_capacitor("cl", "out", "0", 100e-15)
    return net


def test_ground_always_present():
    net = Netlist()
    assert GROUND in net.sources
    assert net.sources[GROUND].value(0.0) == 0.0


def test_ground_cannot_be_redriven_to_nonzero():
    net = Netlist()
    with pytest.raises(ValueError):
        net.drive(GROUND, object())
    net.drive(GROUND, DCSource(0.0))  # re-driving with DC is fine


def test_free_and_driven_node_partition():
    net = _inverter()
    assert net.free_nodes() == ["out"]
    assert set(net.driven_nodes()) == {"0", "vdd", "in"}
    assert net.nodes() == {"0", "vdd", "in", "out"}


def test_duplicate_mosfet_name_rejected():
    net = _inverter()
    p = nominal_process()
    with pytest.raises(ValueError):
        net.add_mosfet("mp", "x", "y", "0", MosfetType.NMOS, 1e-6, 1e-6, p.nmos)


def test_find_mosfet():
    net = _inverter()
    assert net.find_mosfet("mn").mtype is MosfetType.NMOS
    assert net.find_mosfet("zz") is None


def test_copy_is_independent():
    net = _inverter()
    cp = net.copy()
    cp.find_mosfet("mn").stuck_open = True
    cp.add_resistor("r1", "out", "0", 100.0)
    assert not net.find_mosfet("mn").stuck_open
    assert len(net.resistors) == 0


def test_internal_nodes_excludes():
    net = _inverter()
    assert net.internal_nodes(exclude=["out"]) == []


def test_validate_passes_clean_netlist():
    warnings = validate(_inverter())
    assert warnings == []


def test_validate_rejects_duplicate_names_across_kinds():
    net = _inverter()
    net.add_resistor("mp", "out", "0", 10.0)  # clashes with MOSFET "mp"
    with pytest.raises(NetlistError):
        validate(net)


def test_validate_rejects_drain_source_short():
    net = _inverter()
    p = nominal_process()
    net.add_mosfet("bad", "x", "g", "x", MosfetType.NMOS, 1e-6, 1e-6, p.nmos)
    with pytest.raises(NetlistError):
        validate(net)


def test_validate_rejects_untouched_free_node():
    net = _inverter()
    net.drive_dc("phi", 0.0)
    # A free node mentioned nowhere: simulate by adding a capacitor then
    # removing it is impossible, so reference through sources-only node.
    net.sources.pop("phi")
    # "phi" no longer exists anywhere; nodes() does not contain it, fine.
    assert "phi" not in net.nodes()


def test_validate_warns_on_capacitive_only_node():
    net = _inverter()
    net.add_capacitor("cf", "float", "0", 1e-15)
    warnings = validate(net)
    assert any("float" in w for w in warnings)


def test_validate_warns_on_self_shorted_resistor():
    net = _inverter()
    net.resistors.append(
        type(net.add_resistor("rt", "out", "0", 1.0))("rs", "out", "out", 1.0)
    )
    warnings = validate(net)
    assert any("shorts node" in w for w in warnings)


def test_capacitor_rejects_negative_value():
    net = _inverter()
    with pytest.raises(ValueError):
        net.add_capacitor("cneg", "out", "0", -1e-15)


def test_resistor_rejects_non_positive_value():
    net = _inverter()
    with pytest.raises(ValueError):
        net.add_resistor("rneg", "out", "0", 0.0)
