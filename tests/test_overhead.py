"""Scheme cost model: area, clock loading, induced skew; process corners."""

import pytest

from repro.clocktree.htree import build_h_tree
from repro.clocktree.tree import Buffer
from repro.core.overhead import scheme_overhead, sensor_overhead
from repro.core.sensing import SensorSizing, SkewSensor
from repro.devices.process import corner_process, nominal_process
from repro.testing.scheme import ClockTestingScheme
from repro.units import ns, um


def test_sensor_overhead_counts_ten_transistors():
    cost = sensor_overhead()
    assert cost.transistor_count == 10
    assert cost.gate_area > 0
    assert cost.active_area > cost.gate_area


def test_sensor_input_capacitance_three_gates_per_clock():
    """phi1 drives b, d, f; phi2 drives a, g, i."""
    sensor = SkewSensor()
    cost = sensor_overhead(sensor)
    netlist = sensor.build()
    expected1 = sum(
        m.gate_capacitance for m in netlist.mosfets if m.gate == "phi1"
    )
    assert cost.input_capacitance_phi1 == pytest.approx(expected1)
    assert cost.input_capacitance_phi1 > 0
    # Symmetric circuit: both clock pins load equally.
    assert cost.input_capacitance_phi1 == pytest.approx(
        cost.input_capacitance_phi2
    )


def test_overhead_scales_with_sizing():
    small = sensor_overhead(SkewSensor(sizing=SensorSizing(w_n=um(1.2))))
    large = sensor_overhead(SkewSensor(sizing=SensorSizing(w_n=um(4.8))))
    assert large.gate_area > small.gate_area
    assert large.input_capacitance_phi1 > small.input_capacitance_phi1


def test_scheme_overhead_totals():
    tree = build_h_tree(levels=2, buffer=Buffer())
    scheme = ClockTestingScheme.plan(
        tree, tau_min=ns(0.12), max_distance=8e-3, top_k=4
    )
    cost = scheme_overhead(scheme)
    assert cost.n_sensors == 4
    assert cost.total_transistors == 40
    assert cost.worst_added_load > 0
    assert set(cost.added_load_per_sink) <= {
        s.name for s in tree.sinks()
    }


def test_instrumentation_slows_monitored_sinks_only():
    tree = build_h_tree(levels=2, buffer=Buffer())
    scheme = ClockTestingScheme.plan(
        tree, tau_min=ns(0.12), max_distance=8e-3, top_k=2
    )
    cost = scheme_overhead(scheme)
    for sink, pristine in cost.pristine_delays.items():
        instrumented = cost.instrumented_delays[sink]
        if sink in cost.added_load_per_sink:
            assert instrumented > pristine
        else:
            assert instrumented == pytest.approx(pristine, rel=1e-9)


def test_induced_skew_below_sensitivity():
    """The instrumentation must not trigger its own sensors."""
    tree = build_h_tree(levels=2, buffer=Buffer())
    scheme = ClockTestingScheme.plan(
        tree, tau_min=ns(0.12), max_distance=8e-3, top_k=6
    )
    cost = scheme_overhead(scheme)
    assert cost.induced_skew < ns(0.12)


def test_scheme_overhead_empty_placement():
    tree = build_h_tree(levels=1)
    scheme = ClockTestingScheme(tree, placements=[])
    cost = scheme_overhead(scheme)
    assert cost.n_sensors == 0
    assert cost.worst_added_load == 0.0
    assert cost.induced_skew == pytest.approx(0.0, abs=1e-18)


# --------------------------------------------------------------------- #
# Process corners
# --------------------------------------------------------------------- #

def test_corner_tt_is_nominal():
    assert corner_process("tt") == nominal_process()


def test_corner_ss_slows_both():
    base = nominal_process()
    ss = corner_process("ss")
    assert ss.nmos.vt0 > base.nmos.vt0
    assert ss.nmos.kp < base.nmos.kp
    assert abs(ss.pmos.vt0) > abs(base.pmos.vt0)
    assert ss.pmos.kp < base.pmos.kp


def test_corner_ff_speeds_both():
    base = nominal_process()
    ff = corner_process("ff")
    assert ff.nmos.vt0 < base.nmos.vt0
    assert ff.nmos.kp > base.nmos.kp


def test_mixed_corners():
    sf = corner_process("sf")
    assert sf.nmos.kp < nominal_process().nmos.kp
    assert sf.pmos.kp > nominal_process().pmos.kp
    fs = corner_process("fs")
    assert fs.nmos.kp > nominal_process().nmos.kp
    assert fs.pmos.kp < nominal_process().pmos.kp


def test_corner_validation():
    with pytest.raises(ValueError):
        corner_process("xx")
    with pytest.raises(ValueError):
        corner_process("slow")
