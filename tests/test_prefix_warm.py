"""Prefix warm-start tests: checkpoint/resume, planner, golden equivalence.

Pins the PR-5 warm-start machinery four ways:

* engine-level checkpoint/resume: the resumed tail is *bit-identical* to
  the checkpointed run's tail (the restart replays the engine's
  backward-Euler-after-breakpoint rule) and stays within 1 uV of a plain
  cold run on the sensing circuit, a stuck-on faulted variant and a
  buffered clock-tree netlist;
* :class:`~repro.analog.engine.TransientCheckpoint` survives pickle and
  JSON round trips exactly;
* the prefix planner groups by the skew-invariant physics only: jobs
  differing in any non-tau field (load, options, process) never merge,
  jobs differing only in tau / slew do;
* end-to-end warm-vs-cold equivalence: job results within 1 uV, the
  bisection ``tau_min`` unchanged to sub-picosecond, the batch engine's
  broadcast resume consistent with its cold path, and warm start
  disabled (flag or ``REPRO_WARM_START=0``) restoring cold evaluation.
"""

import json
import pickle

import numpy as np
import pytest

from repro.analog.engine import TransientCheckpoint, TransientOptions, transient
from repro.analog.kernels import mosfet_scatter_plan
from repro.batch.response import evaluate_jobs_batch
from repro.clocktree.electrical import TreeNetlistBuilder
from repro.clocktree.htree import build_h_tree
from repro.clocktree.tree import Buffer
from repro.core.sensing import SkewSensor
from repro.core.sensitivity import extract_tau_min
from repro.devices.process import corner_process
from repro.devices.sources import ClockSource, clock_pair
from repro.faults.models import TransistorStuckOn
from repro.runtime import (
    Telemetry,
    evaluate_job,
    group_by_prefix,
    prefix_key,
    sensitivity_job,
)
from repro.runtime.prefix import warm_start_default
from repro.units import fF, ns

FAST = TransientOptions(dt_max=ns(0.2), reltol=5e-3)

#: Bar on warm-vs-cold waveform agreement (interpolated, same grid), volts.
WAVEFORM_TOL = 1e-6

#: Bar on warm-vs-cold *measured Vmin* agreement, volts.  Looser than the
#: waveform bar because ``window_min`` is a discrete min over accepted
#: grid points: the warm and cold grids sample the Vmin valley at
#: slightly different abscissae, which shifts the measured extremum by
#: O(dt^2 * curvature) even when the waveforms themselves agree to 1 uV
#: (the batch-vs-scalar equivalence suite bounds the same artifact at
#: 1 mV; the threshold crossings it feeds move by well under 1 ps).
VMIN_TOL = 1e-5

T_CHECK = ns(1.5)
T_STOP = ns(6.0)


def _sensing():
    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    phi1, phi2 = clock_pair(
        period=ns(20.0), slew1=ns(0.2), slew2=ns(0.2),
        skew=ns(0.15), delay=ns(2.0), vdd=sensor.vdd,
    )
    return sensor.build(phi1=phi1, phi2=phi2), sensor.dc_guess()


def _stuck_on():
    netlist, _ = _sensing()
    name = netlist.mosfets[0].name
    return TransistorStuckOn(transistor=name).inject(netlist), None


def _clocktree():
    tree = build_h_tree(levels=1, buffer=Buffer())
    sinks = sorted(s.name for s in tree.sinks())[:2]
    clock = ClockSource(period=ns(20), slew=ns(0.2), delay=ns(2))
    return TreeNetlistBuilder(tree, sinks).build(clock), None


CIRCUITS = {"sensing": _sensing, "stuck_on": _stuck_on, "clocktree": _clocktree}


# --------------------------------------------------------------------- #
# Engine checkpoint / resume.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_resume_is_bit_identical_and_matches_cold(name):
    netlist, initial = CIRCUITS[name]()
    cold = transient(netlist, t_stop=T_STOP, initial=initial, options=FAST)
    full = transient(
        netlist, t_stop=T_STOP, initial=initial, options=FAST,
        checkpoint_at=T_CHECK,
    )
    checkpoint = full.checkpoint
    assert checkpoint is not None
    assert abs(checkpoint.t - T_CHECK) <= 1e-18

    resumed = transient(
        netlist, t_stop=T_STOP, options=FAST, resume_from=checkpoint
    )
    t_full = np.asarray(full.times)
    t_resumed = np.asarray(resumed.times)
    cut = int(np.searchsorted(t_full, checkpoint.t))
    assert t_full[cut] == checkpoint.t
    # Bit-identity: the fork is a legal grid continuation, not merely a
    # close one.
    assert np.array_equal(t_resumed, t_full[cut:])
    for node in full.voltages:
        assert np.array_equal(
            np.asarray(resumed.voltages[node]),
            np.asarray(full.voltages[node])[cut:],
        ), f"{node}: resumed tail diverged from the checkpointed run"

    # Golden equivalence vs a plain cold run (whose grid has no
    # breakpoint at the checkpoint time): within 1 uV everywhere.
    t_cold = np.asarray(cold.times)
    for node in cold.voltages:
        v_cold = np.asarray(cold.voltages[node])
        v_resumed = np.asarray(resumed.voltages[node])
        mask = t_cold >= checkpoint.t
        worst = np.max(np.abs(
            np.interp(t_cold[mask], t_resumed, v_resumed) - v_cold[mask]
        ))
        assert worst <= WAVEFORM_TOL, f"{node}: {worst:.3e} V off cold"


def test_resume_rejects_mismatched_node_order():
    netlist, initial = _sensing()
    full = transient(
        netlist, t_stop=T_STOP, initial=initial, options=FAST,
        checkpoint_at=T_CHECK,
    )
    other, _ = _clocktree()
    with pytest.raises(ValueError):
        transient(other, t_stop=T_STOP, options=FAST,
                  resume_from=full.checkpoint)


def test_checkpoint_pickle_and_json_round_trip():
    netlist, initial = _sensing()
    result = transient(
        netlist, t_stop=T_CHECK, initial=initial, options=FAST,
        checkpoint_at=T_CHECK,
    )
    checkpoint = result.checkpoint

    for clone in (
        pickle.loads(pickle.dumps(checkpoint)),
        TransientCheckpoint.from_payload(
            json.loads(json.dumps(checkpoint.to_payload()))
        ),
    ):
        assert clone.t == checkpoint.t
        assert clone.t_prev == checkpoint.t_prev
        assert clone.nodes == checkpoint.nodes
        assert np.array_equal(clone.state, checkpoint.state)
        assert np.array_equal(clone.state_prev, checkpoint.state_prev)


# --------------------------------------------------------------------- #
# Prefix planner.
# --------------------------------------------------------------------- #
def test_planner_merges_tau_and_slew_only():
    base = dict(options=FAST, warm_start=True)
    shared = [
        sensitivity_job(fF(160), ns(0.2), ns(0.0), **base),
        sensitivity_job(fF(160), ns(0.2), ns(0.3), **base),   # other tau
        sensitivity_job(fF(160), ns(0.4), ns(0.15), **base),  # other slew
    ]
    different = [
        sensitivity_job(fF(240), ns(0.2), ns(0.15), **base),  # other load
        sensitivity_job(fF(160), ns(0.2), ns(0.15),           # other corner
                        process=corner_process("ss"), warm_start=True),
        sensitivity_job(fF(160), ns(0.2), ns(0.15),           # other options
                        options=TransientOptions(dt_max=ns(0.1)),
                        warm_start=True),
        sensitivity_job(fF(160), ns(0.2), -ns(0.3), **base),  # other fork
    ]
    cold = sensitivity_job(fF(160), ns(0.2), ns(0.15), options=FAST,
                           warm_start=False)

    groups = group_by_prefix(shared + different + [cold])
    shared_key = prefix_key(shared[0])
    assert [job.skew for job in groups[shared_key]] == \
        [job.skew for job in shared]
    # Every job with a differing non-tau field lands in its own group.
    keys = [prefix_key(job) for job in different]
    assert len(set(keys) | {shared_key}) == len(different) + 1
    # Cold jobs are never planned.
    assert sum(len(g) for g in groups.values()) == len(shared) + len(different)


def test_env_variable_controls_factory_default(monkeypatch):
    monkeypatch.setenv("REPRO_WARM_START", "0")
    assert not warm_start_default()
    assert not sensitivity_job(fF(160), ns(0.2), 0.0).warm_start
    monkeypatch.setenv("REPRO_WARM_START", "1")
    assert warm_start_default()
    assert sensitivity_job(fF(160), ns(0.2), 0.0).warm_start
    # Explicit argument always wins over the environment.
    assert not sensitivity_job(fF(160), ns(0.2), 0.0,
                               warm_start=False).warm_start


# --------------------------------------------------------------------- #
# End-to-end warm vs cold.
# --------------------------------------------------------------------- #
def test_warm_job_matches_cold_job():
    cold_job = sensitivity_job(fF(160), ns(0.2), ns(0.15), options=FAST,
                               warm_start=False)
    warm_job = sensitivity_job(fF(160), ns(0.2), ns(0.15), options=FAST,
                               warm_start=True)
    cold = evaluate_job(cold_job)
    warm = evaluate_job(warm_job)
    assert cold.prefix == ()
    assert dict(warm.prefix)  # hits or builds recorded
    assert abs(warm.vmin_y1 - cold.vmin_y1) <= VMIN_TOL
    assert abs(warm.vmin_y2 - cold.vmin_y2) <= VMIN_TOL
    assert warm.code == cold.code
    # The warm run integrates strictly fewer steps (prefix amortised,
    # post-measurement tail skipped).
    assert warm.steps < cold.steps


def test_extract_tau_min_warm_equals_cold():
    kwargs = dict(options=FAST, cache=None, tau_hi=ns(0.5),
                  tolerance=ns(0.004))
    cold = extract_tau_min(fF(160), warm_start=False, **kwargs)
    warm = extract_tau_min(fF(160), warm_start=True, **kwargs)
    assert abs(warm - cold) <= 1e-12


def test_campaign_telemetry_counts_prefix_reuse():
    from repro.core.sensitivity import sweep_skew

    telemetry = Telemetry()
    curve = sweep_skew(
        fF(160), ns(0.2), [ns(t) for t in (0.0, 0.1, 0.2, 0.3)],
        options=FAST, cache=None, telemetry=telemetry, warm_start=True,
    )
    assert np.all(np.isfinite(curve.vmins))
    assert telemetry.prefix_hits >= 4  # every sweep point forked warm
    assert telemetry.prefix_hit_rate > 0.0
    assert telemetry.prefix_saved_time_s > 0.0
    assert "prefix" in telemetry.as_dict()["engine"]


def test_batch_warm_stack_matches_batch_cold():
    taus = (ns(0.0), ns(0.15), ns(0.3))
    warm_jobs = [
        sensitivity_job(fF(160), ns(0.2), tau, options=FAST, warm_start=True)
        for tau in taus
    ]
    cold_jobs = [
        sensitivity_job(fF(160), ns(0.2), tau, options=FAST, warm_start=False)
        for tau in taus
    ]
    warm = evaluate_jobs_batch(warm_jobs)
    cold = evaluate_jobs_batch(cold_jobs)
    assert warm.prefix, "warm stack must report prefix accounting"
    assert warm.prefix["hits"] + warm.prefix["builds"] == len(taus)
    assert warm.prefix["saved_s"] > 0.0
    assert not cold.prefix
    for w, c in zip(warm.results, cold.results):
        assert w is not None and c is not None
        assert abs(w.vmin_y1 - c.vmin_y1) <= 1e-3
        assert abs(w.vmin_y2 - c.vmin_y2) <= 1e-3
        assert w.code == c.code


def test_batch_resume_rejects_mismatched_nodes():
    from repro.batch.compile import compile_batch
    from repro.batch.engine import batch_transient

    netlist, initial = _sensing()
    batch = compile_batch([netlist, netlist])
    bad = TransientCheckpoint(
        t=T_CHECK, t_prev=T_CHECK - 1e-12,
        state=np.zeros(3), state_prev=np.zeros(3),
        nodes=("a", "b", "c"),
    )
    with pytest.raises(ValueError):
        batch_transient(batch, t_stop=T_STOP, options=FAST, resume_from=bad)


# --------------------------------------------------------------------- #
# Scatter-plan memoization.
# --------------------------------------------------------------------- #
def test_scatter_plan_is_memoized_per_topology():
    plan_a = mosfet_scatter_plan([0, 2], [1, 1], [3, 4], 5)
    plan_b = mosfet_scatter_plan(np.array([0, 2]), np.array([1, 1]),
                                 np.array([3, 4]), 5)
    assert plan_a is plan_b  # same topology signature -> same plan object
    plan_c = mosfet_scatter_plan([0, 2], [1, 1], [3, 4], 6)
    assert plan_c is not plan_a  # different matrix size -> fresh plan
