"""Process parameter cards and Monte Carlo perturbation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.process import nominal_process, perturbed_process


def test_nominal_polarities():
    p = nominal_process()
    assert p.nmos.vt0 > 0
    assert p.pmos.vt0 < 0
    assert p.nmos.kp > p.pmos.kp  # electron vs hole mobility


def test_nominal_supply():
    assert nominal_process().vdd == 5.0


def test_polarity_lookup():
    p = nominal_process()
    assert p.polarity(is_pmos=False) is p.nmos
    assert p.polarity(is_pmos=True) is p.pmos


def test_perturbed_differs_from_nominal():
    rng = np.random.default_rng(0)
    p = perturbed_process(rng)
    base = nominal_process()
    assert p.nmos.vt0 != base.nmos.vt0
    assert p.pmos.kp != base.pmos.kp


def test_perturbed_is_reproducible():
    a = perturbed_process(np.random.default_rng(7))
    b = perturbed_process(np.random.default_rng(7))
    assert a.nmos == b.nmos
    assert a.pmos == b.pmos


def test_zero_variation_is_identity():
    rng = np.random.default_rng(0)
    p = perturbed_process(rng, relative_variation=0.0)
    base = nominal_process()
    assert p.nmos.vt0 == base.nmos.vt0
    assert p.pmos.lam == base.pmos.lam


def test_negative_variation_rejected():
    with pytest.raises(ValueError):
        perturbed_process(np.random.default_rng(0), relative_variation=-0.1)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), r=st.floats(0.0, 0.3))
def test_perturbation_stays_in_band(seed, r):
    """Every parameter lands within nominal * (1 +/- r) - the uniform
    relative window the paper specifies."""
    rng = np.random.default_rng(seed)
    base = nominal_process()
    p = perturbed_process(rng, relative_variation=r, base=base)
    for card, ref in ((p.nmos, base.nmos), (p.pmos, base.pmos)):
        for attr in ("vt0", "kp", "lam", "cox_per_area", "cj_per_width"):
            value = getattr(card, attr)
            nominal = getattr(ref, attr)
            lo, hi = sorted((nominal * (1 - r), nominal * (1 + r)))
            assert lo - 1e-18 <= value <= hi + 1e-18


def test_perturbed_preserves_sign_of_vt():
    """A 15 % variation never flips a threshold's polarity."""
    for seed in range(20):
        p = perturbed_process(np.random.default_rng(seed))
        assert p.nmos.vt0 > 0
        assert p.pmos.vt0 < 0
