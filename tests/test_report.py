"""ASCII rendering and composite reports."""

import numpy as np
import pytest

from repro.analog.waveform import Waveform
from repro.core.sensitivity import SensitivityCurve
from repro.report.render import ascii_curve, ascii_waveform, format_table
from repro.units import fF, ns


def ramp_wave():
    return Waveform(
        times=np.array([0.0, 1.0, 2.0]),
        values=np.array([0.0, 5.0, 0.0]),
    )


def test_ascii_waveform_dimensions():
    art = ascii_waveform(ramp_wave(), rows=8, cols=20)
    lines = art.split("\n")
    assert len(lines) == 8
    assert all(len(line) == 20 for line in lines)
    assert art.count("*") == 20  # one mark per column


def test_ascii_waveform_peak_at_top():
    art = ascii_waveform(ramp_wave(), rows=6, cols=21, v_max=5.0)
    lines = art.split("\n")
    middle = 10
    column = [line[middle] for line in lines]
    assert column[0] == "*"  # 5 V peak lands on the top row


def test_ascii_waveform_validates():
    with pytest.raises(ValueError):
        ascii_waveform(ramp_wave(), rows=1)
    with pytest.raises(ValueError):
        ascii_waveform(ramp_wave(), t0=2.0, t1=1.0)


def test_ascii_curve_contains_markers_and_line():
    art = ascii_curve([0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0], y_line=1.5)
    assert "o" in art
    assert "-" in art


def test_ascii_curve_validates():
    with pytest.raises(ValueError):
        ascii_curve([], [])
    with pytest.raises(ValueError):
        ascii_curve([1, 2], [1.0])


def test_ascii_curve_degenerate_ranges():
    art = ascii_curve([1, 1], [2.0, 2.0])
    assert "o" in art


def test_format_table_alignment():
    text = format_table(
        ["name", "value"], [("alpha", 1.0), ("b", 22.5)]
    )
    lines = text.split("\n")
    assert len(lines) == 4
    assert lines[1].replace(" ", "").startswith("-")
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # rectangular


def test_waveform_report_includes_code(no_skew_response):
    from repro.report import waveform_report

    text = waveform_report(no_skew_response, t0=ns(1), t1=ns(12))
    assert "code = (0, 0)" in text
    assert "y1:" in text and "y2:" in text


def test_sensitivity_report_lists_tau_min():
    from repro.report import sensitivity_report

    curve = SensitivityCurve(
        load=fF(160), slew=ns(0.2),
        skews=np.array([0.0, 1e-10, 2e-10]),
        vmins=np.array([1.0, 2.0, 4.0]),
    )
    text = sensitivity_report([curve])
    assert "160 fF" in text
    assert "tau_min" in text


def test_testability_report_text_structure():
    from repro.faults.models import NodeStuckAt
    from repro.testing.testability import FaultVerdict, TestabilityReport

    report = TestabilityReport()
    report.verdicts["stuck-at"] = [
        FaultVerdict(
            fault=NodeStuckAt("y1", 0),
            detected_logic=True, detected_iddq=True,
            iddq_current=1e-3, codes=[],
        ),
        FaultVerdict(
            fault=NodeStuckAt("y1", 1),
            detected_logic=False, detected_iddq=False,
            iddq_current=1e-9, codes=[],
        ),
    ]
    from repro.report import testability_report_text

    text = testability_report_text(report)
    assert "stuck-at" in text
    assert "50 %" in text
    assert "escapes" in text


# --------------------------------------------------------------------- #
# Report aggregation
# --------------------------------------------------------------------- #

def test_collect_results_empty_dir(tmp_path):
    from repro.report.aggregate import collect_results

    assert collect_results(str(tmp_path / "nope")) == {}


def test_build_report_orders_sections(tmp_path):
    from repro.report.aggregate import build_report

    (tmp_path / "sec3_testability.txt").write_text("SEC3 DATA\n")
    (tmp_path / "fig2_no_skew.txt").write_text("FIG2 DATA\n")
    (tmp_path / "custom_extra.txt").write_text("EXTRA DATA\n")
    text = build_report(str(tmp_path))
    assert text.index("FIG2 DATA") < text.index("SEC3 DATA")
    assert "Additional results" in text
    assert "EXTRA DATA" in text
    assert "Not yet regenerated" in text


def test_write_report_creates_file(tmp_path):
    from repro.report.aggregate import write_report

    out = tmp_path / "out"
    out.mkdir()
    (out / "fig2_no_skew.txt").write_text("FIG2\n")
    target = tmp_path / "REPORT.md"
    path = write_report(str(out), str(target))
    assert path == str(target)
    assert "FIG2" in target.read_text()


def test_cli_report_command(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "out"
    out.mkdir()
    (out / "fig4_sensitivity.txt").write_text("FIG4 ROWS\n")
    assert main(["report", "--out-dir", str(out)]) == 0
    assert "FIG4 ROWS" in capsys.readouterr().out
