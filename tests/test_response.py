"""Electrical behaviour of the sensor (Figs. 2 and 3)."""

import pytest

from repro.core.response import (
    ERROR_NONE,
    ERROR_PHI1_LATE,
    ERROR_PHI2_LATE,
    evaluate_response,
    simulate_sensor,
)
from repro.core.sensing import SkewSensor
from repro.devices.process import nominal_process
from repro.units import VTH_INTERPRET, fF, ns


def test_no_skew_outputs_fall_together(no_skew_response):
    """Fig. 2: both outputs leave the high level after the edges."""
    assert no_skew_response.code == ERROR_NONE
    assert no_skew_response.vmin_y1 < VTH_INTERPRET
    assert no_skew_response.vmin_y2 < VTH_INTERPRET


def test_no_skew_clamps_near_nmos_threshold(no_skew_response):
    """Fig. 2: 'the voltage of y1 and y2 cannot fall below the n-channel
    conductance threshold, because of the feedback'."""
    vtn = nominal_process().nmos.vt0
    assert no_skew_response.vmin_y1 > 0.8 * vtn
    assert no_skew_response.vmin_y1 < 2.0 * vtn
    assert no_skew_response.vmin_y2 == pytest.approx(
        no_skew_response.vmin_y1, abs=0.05
    )


def test_no_skew_outputs_recover_high(no_skew_response):
    """After the falling clock edges the outputs return to VDD."""
    y1 = no_skew_response.wave("y1")
    assert y1.final_value() == pytest.approx(5.0, abs=0.1)


def test_phi2_late_gives_01(skewed_response):
    """Fig. 3: y1 completes its transition, y2 holds high."""
    assert skewed_response.code == ERROR_PHI2_LATE
    assert skewed_response.vmin_y1 < 0.5
    assert skewed_response.vmin_y2 > VTH_INTERPRET
    assert skewed_response.error_detected


def test_phi1_late_gives_10(sensor, fast_options):
    response = simulate_sensor(sensor, skew=-ns(1.0), options=fast_options)
    assert response.code == ERROR_PHI1_LATE
    assert response.vmin_late == response.vmin_y1
    assert response.error_detected


def test_vmin_late_selects_correct_output(sensor, fast_options):
    pos = simulate_sensor(sensor, skew=ns(0.5), options=fast_options)
    assert pos.vmin_late == pos.vmin_y2
    neg = simulate_sensor(sensor, skew=-ns(0.5), options=fast_options)
    assert neg.vmin_late == neg.vmin_y1


def test_error_indication_persists_half_period(sensor, fast_options):
    """Sec. 2: the 01 indication 'holds for a time long enough (half of
    the clock period)'."""
    response = simulate_sensor(
        sensor, skew=ns(1.0), period=ns(20), settle=ns(2), options=fast_options
    )
    y2 = response.wave("y2")
    # From the late edge to just before the falling edge, y2 stays high.
    assert y2.window_min(ns(4.0), ns(11.5)) > VTH_INTERPRET


def test_error_clears_after_falling_edge(sensor, fast_options):
    """The static indication ends when the clocks fall (hence the latching
    indicators downstream)."""
    response = simulate_sensor(sensor, skew=ns(1.0), options=fast_options)
    y1 = response.wave("y1")
    assert y1.final_value() == pytest.approx(5.0, abs=0.1)


def test_symmetric_skews_give_mirror_vmins(sensor, fast_options):
    pos = simulate_sensor(sensor, skew=ns(0.3), options=fast_options)
    neg = simulate_sensor(sensor, skew=-ns(0.3), options=fast_options)
    assert pos.vmin_y2 == pytest.approx(neg.vmin_y1, abs=0.05)


def test_full_swing_variant_reaches_ground(fast_options):
    """The keeper option pulls the outputs fully low in the no-skew case."""
    sensor = SkewSensor(load1=fF(160), load2=fF(160), full_swing=True)
    response = simulate_sensor(sensor, skew=0.0, options=fast_options)
    assert response.vmin_y1 < 0.3
    assert response.code == ERROR_NONE


def test_evaluate_response_criterion():
    assert evaluate_response(3.0) is True
    assert evaluate_response(2.0) is False
    assert evaluate_response(2.0, threshold=1.5) is True


def test_asymmetric_loads_still_detect(fast_options):
    sensor = SkewSensor(load1=fF(80), load2=fF(240))
    response = simulate_sensor(sensor, skew=ns(1.0), options=fast_options)
    assert response.code == ERROR_PHI2_LATE
