"""Content-addressed result cache: keying, tiers, accounting."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analog.engine import TransientOptions
from repro.core.sensing import SensorSizing
from repro.devices.process import nominal_process
from repro.runtime import (
    JobResult,
    ResultCache,
    SensorJob,
    engine_fingerprint,
    stable_key,
)
from repro.runtime.cache import default_cache_dir
from repro.units import fF, ns

FAST = TransientOptions(dt_max=200e-12, reltol=5e-3)


def make_job(**overrides) -> SensorJob:
    kwargs = dict(skew=ns(0.3), load1=fF(160), load2=fF(160), options=FAST)
    kwargs.update(overrides)
    return SensorJob(**kwargs)


# --------------------------------------------------------------------- #
# Key stability
# --------------------------------------------------------------------- #

def test_key_is_deterministic_within_process():
    assert make_job().key() == make_job().key()


def test_key_stable_across_processes():
    """The content key must not depend on PYTHONHASHSEED or process state."""
    job = make_job()
    script = (
        "from repro.runtime import SensorJob\n"
        "from repro.analog.engine import TransientOptions\n"
        "from repro.units import fF, ns\n"
        "job = SensorJob(skew=ns(0.3), load1=fF(160), load2=fF(160),\n"
        "                options=TransientOptions(dt_max=200e-12, reltol=5e-3))\n"
        "print(job.key())\n"
    )
    env = dict(os.environ, PYTHONHASHSEED="12345")
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script], env=env,
        capture_output=True, text=True, check=True,
    )
    assert out.stdout.strip() == job.key()


def test_key_changes_with_every_input():
    base = make_job().key()
    assert make_job(skew=ns(0.31)).key() != base
    assert make_job(load1=fF(161)).key() != base
    assert make_job(slew2=ns(0.25)).key() != base
    assert make_job(full_swing=True).key() != base
    assert make_job(sizing=SensorSizing(w_n=2e-6)).key() != base
    assert make_job(options=TransientOptions(dt_max=100e-12)).key() != base


def test_key_resolves_default_process_and_options():
    """None defaults and their explicit values address the same entry."""
    implicit = SensorJob(skew=ns(0.2))
    explicit = SensorJob(
        skew=ns(0.2), process=nominal_process(), options=TransientOptions()
    )
    assert implicit.key() == explicit.key()


def test_stable_key_rejects_unhashable_junk():
    with pytest.raises(TypeError):
        stable_key(object())


def test_engine_fingerprint_folds_into_keys(monkeypatch):
    """A physics-code change (new fingerprint) must shift the namespace."""
    cache_a = ResultCache(disk_dir=None, version="aaaa")
    cache_b = ResultCache(disk_dir=None, version="bbbb")
    assert cache_a.version != cache_b.version
    assert len(engine_fingerprint()) == 16


# --------------------------------------------------------------------- #
# Disk tier
# --------------------------------------------------------------------- #

def test_disk_cache_round_trip(tmp_path):
    payload = JobResult(
        skew=ns(0.3), vmin_y1=0.1234567891011121, vmin_y2=4.000000000000123,
        code=(0, 1), steps=321,
    ).to_payload()
    writer = ResultCache(disk_dir=tmp_path)
    writer.put("k" * 64, payload)

    reader = ResultCache(disk_dir=tmp_path, version=writer.version)
    value = reader.get("k" * 64)
    assert value == payload
    assert reader.stats.hits_disk == 1
    # Bit-exact float round trip through JSON.
    result = JobResult.from_payload(value, cached=True)
    assert result.vmin_y1 == 0.1234567891011121
    assert result.vmin_y2 == 4.000000000000123
    assert result.code == (0, 1)
    assert result.cached


def test_disk_entries_live_under_versioned_dir(tmp_path):
    cache = ResultCache(disk_dir=tmp_path, version="deadbeef")
    cache.put("a" * 64, {"x": 1})
    files = list((tmp_path / "vdeadbeef").glob("*.json"))
    assert len(files) == 1
    assert json.loads(files[0].read_text()) == {"x": 1}
    # A version bump leaves old entries behind and starts fresh.
    bumped = ResultCache(disk_dir=tmp_path, version="cafebabe")
    assert bumped.get("a" * 64) is None


def test_clear_removes_disk_entries(tmp_path):
    cache = ResultCache(disk_dir=tmp_path)
    for i in range(3):
        cache.put(f"{i:064d}", {"i": i})
    assert cache.disk_entries() == 3
    assert cache.clear() == 3
    assert cache.disk_entries() == 0
    assert len(cache) == 0


def test_memory_lru_eviction():
    cache = ResultCache(max_memory_entries=2, disk_dir=None)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert cache.get("a") is None  # evicted, no disk tier
    assert cache.get("c") == 3


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    cache = ResultCache(disk_dir=tmp_path)
    cache.put("a" * 64, {"x": 1})
    path = cache.disk_dir / ("a" * 64 + ".json")
    path.write_text("{not json")
    fresh = ResultCache(disk_dir=tmp_path, version=cache.version)
    assert fresh.get("a" * 64) is None
    assert fresh.stats.misses == 1


# --------------------------------------------------------------------- #
# Environment knobs
# --------------------------------------------------------------------- #

def test_env_dir_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
    assert default_cache_dir() == tmp_path / "custom"
    cache = ResultCache()  # disk_dir="auto"
    assert cache.disk_enabled
    assert str(cache.disk_dir).startswith(str(tmp_path / "custom"))


def test_env_disable_wins(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
    assert default_cache_dir() is None
    cache = ResultCache()
    assert not cache.disk_enabled
    cache.put("a", 1)  # must not raise, memory tier still works
    assert cache.get("a") == 1


# --------------------------------------------------------------------- #
# Hit/miss accounting
# --------------------------------------------------------------------- #

def test_stats_accounting(tmp_path):
    cache = ResultCache(disk_dir=tmp_path)
    assert cache.get("missing") is None
    cache.put("k", {"v": 1})
    assert cache.get("k") == {"v": 1}
    stats = cache.stats.as_dict()
    assert stats["misses"] == 1
    assert stats["hits_memory"] == 1
    assert stats["puts"] == 1
    assert stats["hits"] == 1
