"""Content-addressed result cache: keying, tiers, accounting."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analog.engine import TransientOptions
from repro.core.sensing import SensorSizing
from repro.devices.process import nominal_process
from repro.runtime import (
    JobResult,
    ResultCache,
    SensorJob,
    engine_fingerprint,
    stable_key,
)
from repro.runtime.cache import default_cache_dir
from repro.units import fF, ns

FAST = TransientOptions(dt_max=200e-12, reltol=5e-3)


def make_job(**overrides) -> SensorJob:
    kwargs = dict(skew=ns(0.3), load1=fF(160), load2=fF(160), options=FAST)
    kwargs.update(overrides)
    return SensorJob(**kwargs)


# --------------------------------------------------------------------- #
# Key stability
# --------------------------------------------------------------------- #

def test_key_is_deterministic_within_process():
    assert make_job().key() == make_job().key()


def test_key_stable_across_processes():
    """The content key must not depend on PYTHONHASHSEED or process state."""
    job = make_job()
    script = (
        "from repro.runtime import SensorJob\n"
        "from repro.analog.engine import TransientOptions\n"
        "from repro.units import fF, ns\n"
        "job = SensorJob(skew=ns(0.3), load1=fF(160), load2=fF(160),\n"
        "                options=TransientOptions(dt_max=200e-12, reltol=5e-3))\n"
        "print(job.key())\n"
    )
    env = dict(os.environ, PYTHONHASHSEED="12345")
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script], env=env,
        capture_output=True, text=True, check=True,
    )
    assert out.stdout.strip() == job.key()


def test_key_changes_with_every_input():
    base = make_job().key()
    assert make_job(skew=ns(0.31)).key() != base
    assert make_job(load1=fF(161)).key() != base
    assert make_job(slew2=ns(0.25)).key() != base
    assert make_job(full_swing=True).key() != base
    assert make_job(sizing=SensorSizing(w_n=2e-6)).key() != base
    assert make_job(options=TransientOptions(dt_max=100e-12)).key() != base


def test_key_resolves_default_process_and_options():
    """None defaults and their explicit values address the same entry."""
    implicit = SensorJob(skew=ns(0.2))
    explicit = SensorJob(
        skew=ns(0.2), process=nominal_process(), options=TransientOptions()
    )
    assert implicit.key() == explicit.key()


def test_stable_key_rejects_unhashable_junk():
    with pytest.raises(TypeError):
        stable_key(object())


def test_engine_fingerprint_folds_into_keys(monkeypatch):
    """A physics-code change (new fingerprint) must shift the namespace."""
    cache_a = ResultCache(disk_dir=None, version="aaaa")
    cache_b = ResultCache(disk_dir=None, version="bbbb")
    assert cache_a.version != cache_b.version
    assert len(engine_fingerprint()) == 16


# --------------------------------------------------------------------- #
# Disk tier
# --------------------------------------------------------------------- #

def test_disk_cache_round_trip(tmp_path):
    payload = JobResult(
        skew=ns(0.3), vmin_y1=0.1234567891011121, vmin_y2=4.000000000000123,
        code=(0, 1), steps=321,
    ).to_payload()
    writer = ResultCache(disk_dir=tmp_path)
    writer.put("k" * 64, payload)

    reader = ResultCache(disk_dir=tmp_path, version=writer.version)
    value = reader.get("k" * 64)
    assert value == payload
    assert reader.stats.hits_disk == 1
    # Bit-exact float round trip through JSON.
    result = JobResult.from_payload(value, cached=True)
    assert result.vmin_y1 == 0.1234567891011121
    assert result.vmin_y2 == 4.000000000000123
    assert result.code == (0, 1)
    assert result.cached


def test_disk_entries_live_under_versioned_dir(tmp_path):
    cache = ResultCache(disk_dir=tmp_path, version="deadbeef")
    cache.put("a" * 64, {"x": 1})
    files = list((tmp_path / "vdeadbeef").glob("*.json"))
    assert len(files) == 1
    assert json.loads(files[0].read_text()) == {"x": 1}
    # A version bump leaves old entries behind and starts fresh.
    bumped = ResultCache(disk_dir=tmp_path, version="cafebabe")
    assert bumped.get("a" * 64) is None


def test_clear_removes_disk_entries(tmp_path):
    cache = ResultCache(disk_dir=tmp_path)
    for i in range(3):
        cache.put(f"{i:064d}", {"i": i})
    assert cache.disk_entries() == 3
    assert cache.clear() == 3
    assert cache.disk_entries() == 0
    assert len(cache) == 0


def test_memory_lru_eviction():
    cache = ResultCache(max_memory_entries=2, disk_dir=None)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert cache.get("a") is None  # evicted, no disk tier
    assert cache.get("c") == 3


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    cache = ResultCache(disk_dir=tmp_path)
    cache.put("a" * 64, {"x": 1})
    path = cache.disk_dir / ("a" * 64 + ".json")
    path.write_text("{not json")
    fresh = ResultCache(disk_dir=tmp_path, version=cache.version)
    assert fresh.get("a" * 64) is None
    assert fresh.stats.misses == 1


# --------------------------------------------------------------------- #
# Environment knobs
# --------------------------------------------------------------------- #

def test_env_dir_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
    assert default_cache_dir() == tmp_path / "custom"
    cache = ResultCache()  # disk_dir="auto"
    assert cache.disk_enabled
    assert str(cache.disk_dir).startswith(str(tmp_path / "custom"))


def test_env_disable_wins(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
    assert default_cache_dir() is None
    cache = ResultCache()
    assert not cache.disk_enabled
    cache.put("a", 1)  # must not raise, memory tier still works
    assert cache.get("a") == 1


# --------------------------------------------------------------------- #
# Hit/miss accounting
# --------------------------------------------------------------------- #

def test_stats_accounting(tmp_path):
    cache = ResultCache(disk_dir=tmp_path)
    assert cache.get("missing") is None
    cache.put("k", {"v": 1})
    assert cache.get("k") == {"v": 1}
    stats = cache.stats.as_dict()
    assert stats["misses"] == 1
    assert stats["hits_memory"] == 1
    assert stats["puts"] == 1
    assert stats["hits"] == 1


# --------------------------------------------------------------------- #
# Disk-tier size accounting and LRU eviction
# --------------------------------------------------------------------- #

def test_parse_size_suffixes():
    from repro.runtime import parse_size

    assert parse_size("1024") == 1024
    assert parse_size("4k") == 4096
    assert parse_size("64m") == 64 * 1024 ** 2
    assert parse_size("1g") == 1024 ** 3
    assert parse_size("2kb") == 2048
    assert parse_size("1.5k") == 1536
    with pytest.raises(ValueError):
        parse_size("")
    with pytest.raises(ValueError):
        parse_size("lots")


def test_default_max_disk_bytes_env(monkeypatch):
    from repro.runtime import default_max_disk_bytes

    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
    assert default_max_disk_bytes() is None
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "8k")
    assert default_max_disk_bytes() == 8192
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "nonsense")
    with pytest.raises(ValueError):
        default_max_disk_bytes()


def test_disk_total_bytes_tracks_puts(tmp_path):
    cache = ResultCache(disk_dir=tmp_path, max_disk_bytes=None)
    assert cache.disk_total_bytes() == 0
    cache.put("a" * 64, {"x": 1})
    one = cache.disk_total_bytes()
    assert one > 0
    cache.put("b" * 64, {"x": 2})
    assert cache.disk_total_bytes() > one
    # Overwriting an entry must not double-count its bytes.
    cache.put("a" * 64, {"x": 1})
    fresh = ResultCache(disk_dir=tmp_path, version=cache.version)
    assert cache.disk_total_bytes() == fresh.disk_total_bytes()


def test_lru_eviction_on_budget(tmp_path):
    cache = ResultCache(disk_dir=tmp_path, max_disk_bytes=None)
    for index in range(8):
        cache.put(f"{index:064d}", {"payload": "x" * 64})
    per_entry = cache.disk_total_bytes() // 8
    # Age the entries oldest-first, then touch entry 0 to make it hot.
    for index in range(8):
        path = cache.disk_dir / (f"{index:064d}" + ".json")
        os.utime(path, (1000 + index, 1000 + index))
    budgeted = ResultCache(
        disk_dir=tmp_path, version=cache.version,
        max_disk_bytes=per_entry * 4,
    )
    assert budgeted.get(f"{0:064d}") is not None  # refreshes mtime
    removed = budgeted.prune()
    assert removed >= 4
    assert budgeted.disk_total_bytes() <= per_entry * 4
    # The freshly touched entry survived; the oldest untouched ones went.
    assert (budgeted.disk_dir / (f"{0:064d}" + ".json")).exists()
    assert not (budgeted.disk_dir / (f"{1:064d}" + ".json")).exists()
    stats = budgeted.stats.as_dict()
    assert stats["evictions_disk"] == removed
    assert stats["evicted_bytes"] > 0


def test_put_enforces_budget_and_protects_fresh_entry(tmp_path):
    cache = ResultCache(disk_dir=tmp_path, max_disk_bytes=1)
    cache.put("a" * 64, {"x": 1})
    # The budget (1 byte) is absurdly small, but the just-written entry
    # is protected from evicting itself.
    assert (cache.disk_dir / ("a" * 64 + ".json")).exists()
    cache.put("b" * 64, {"x": 2})
    # Writing b evicted a (LRU) while protecting b.
    assert (cache.disk_dir / ("b" * 64 + ".json")).exists()
    assert not (cache.disk_dir / ("a" * 64 + ".json")).exists()


def test_prune_spans_stale_version_namespaces(tmp_path):
    stale = ResultCache(disk_dir=tmp_path, version="old")
    stale.put("a" * 64, {"x": 1})
    os.utime(stale.disk_dir / ("a" * 64 + ".json"), (1000, 1000))
    live = ResultCache(disk_dir=tmp_path, version="new")
    live.put("b" * 64, {"x": 2})
    removed = live.prune(max_bytes=live.disk_total_bytes() // 2)
    assert removed == 1
    # The stale namespace's (older) entry went first.
    assert not (stale.disk_dir / ("a" * 64 + ".json")).exists()
    assert (live.disk_dir / ("b" * 64 + ".json")).exists()


# --------------------------------------------------------------------- #
# Tenant namespaces
# --------------------------------------------------------------------- #

def test_tenant_salt_separates_disk_namespaces(tmp_path):
    from repro.runtime import tenant_cache

    alice = ResultCache(disk_dir=tmp_path, salt="alice")
    bob = ResultCache(disk_dir=tmp_path, salt="bob")
    assert alice.disk_dir != bob.disk_dir
    alice.put("k" * 64, {"who": "alice"})
    assert bob.get("k" * 64) is None
    # Same key, same payload addressing: the salt changes only where the
    # entry lives, never the key.
    assert alice.get("k" * 64) == {"who": "alice"}


def test_default_tenant_is_the_process_cache(fresh_cache):
    from repro.runtime import get_cache, tenant_cache

    assert tenant_cache("") is get_cache()
    named = tenant_cache("acme")
    assert named is not get_cache()
    assert named.salt == "acme"
