"""Campaign executor: backends, ordering, retries, timeouts, caching."""

from __future__ import annotations

import time

import pytest

from repro.analog.dcop import ConvergenceError
from repro.analog.engine import TransientOptions
from repro.runtime import (
    JobResult,
    ResultCache,
    SensorJob,
    Telemetry,
    run_campaign,
    resolve_chunksize,
    resolve_workers,
)
from repro.runtime.executor import CampaignTimeoutError
from repro.units import fF, ns

FAST = TransientOptions(dt_max=200e-12, reltol=5e-3)


def jobs_for(*skews_ns):
    return [
        SensorJob(skew=ns(t), load1=fF(160), load2=fF(160), options=FAST)
        for t in skews_ns
    ]


# --------------------------------------------------------------------- #
# Fake evaluations (module level: picklable for the process backend).
# --------------------------------------------------------------------- #

def _synthetic(job):
    return JobResult(
        skew=job.skew, vmin_y1=job.skew * 2.0, vmin_y2=job.skew * 3.0,
        code=(0, 0), steps=7,
    )


def _slow_synthetic(job):
    time.sleep(0.5)
    return _synthetic(job)


_FLAKY_FAILURES = {"remaining": 0}


def _flaky(job):
    if _FLAKY_FAILURES["remaining"] > 0:
        _FLAKY_FAILURES["remaining"] -= 1
        raise ConvergenceError("synthetic non-convergence")
    return _synthetic(job)


def _always_diverges(job):
    raise ConvergenceError("synthetic non-convergence")


# --------------------------------------------------------------------- #
# Worker / chunksize resolution (REPRO_MAX_WORKERS satellite).
# --------------------------------------------------------------------- #

def test_resolve_workers_env(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
    assert resolve_workers(None) == 3
    assert resolve_workers(5) == 5  # explicit argument wins
    monkeypatch.setenv("REPRO_MAX_WORKERS", "0")
    assert resolve_workers(None) == 1
    monkeypatch.setenv("REPRO_MAX_WORKERS", "banana")
    with pytest.raises(ValueError):
        resolve_workers(None)


def test_default_workers_reads_env(monkeypatch):
    from repro.montecarlo.parallel import default_workers

    monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
    assert default_workers() == 2
    monkeypatch.delenv("REPRO_MAX_WORKERS")
    assert default_workers() >= 1


def test_resolve_chunksize():
    assert resolve_chunksize(100, 4) == 6      # ~4 chunks per worker
    assert resolve_chunksize(3, 8) == 1        # never below 1
    assert resolve_chunksize(100, 4, chunksize=17) == 17


# --------------------------------------------------------------------- #
# Backends return identical, ordered results.
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_backends_bit_identical(backend):
    jobs = jobs_for(0.1, 0.4)
    reference = run_campaign(jobs, backend="serial", cache=None)
    campaign = run_campaign(jobs, backend=backend, cache=None, max_workers=2)
    for got, want in zip(campaign, reference):
        assert got.vmin_y1 == want.vmin_y1  # bit-exact, not approx
        assert got.vmin_y2 == want.vmin_y2
        assert got.code == want.code
        assert got.steps == want.steps


def test_results_keep_job_order():
    jobs = jobs_for(0.5, 0.1, 0.3, 0.2)
    campaign = run_campaign(
        jobs, backend="thread", cache=None, max_workers=4, evaluate=_synthetic
    )
    assert [r.skew for r in campaign] == [job.skew for job in jobs]


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        run_campaign([], backend="gpu")


# --------------------------------------------------------------------- #
# Retries on ConvergenceError.
# --------------------------------------------------------------------- #

def test_retry_recovers_from_transient_failures():
    _FLAKY_FAILURES["remaining"] = 2
    telemetry = Telemetry()
    campaign = run_campaign(
        jobs_for(0.2), backend="serial", retries=2,
        evaluate=_flaky, telemetry=telemetry,
    )
    assert campaign[0].attempts == 3
    assert telemetry.retries == 2
    assert telemetry.jobs_evaluated == 1


def test_retry_budget_exhaustion_raises():
    with pytest.raises(ConvergenceError):
        run_campaign(
            jobs_for(0.2), backend="serial", retries=1,
            evaluate=_always_diverges,
        )


def test_negative_retries_rejected():
    with pytest.raises(ValueError):
        run_campaign([], retries=-1)


# --------------------------------------------------------------------- #
# Per-job timeout (thread/process backends).
# --------------------------------------------------------------------- #

def test_thread_timeout_raises():
    with pytest.raises(CampaignTimeoutError):
        run_campaign(
            jobs_for(0.2), backend="thread", timeout=0.05,
            evaluate=_slow_synthetic,
        )


# --------------------------------------------------------------------- #
# Cache integration and accounting.
# --------------------------------------------------------------------- #

def test_warm_campaign_evaluates_nothing(tmp_path):
    jobs = jobs_for(0.1, 0.3)
    cache = ResultCache(disk_dir=tmp_path)
    cold = Telemetry()
    first = run_campaign(jobs, cache=cache, telemetry=cold)
    assert cold.jobs_evaluated == 2
    assert cold.cache_misses == 2
    assert cold.steps_integrated > 0

    warm = Telemetry()
    second = run_campaign(jobs, cache=cache, telemetry=warm)
    assert warm.jobs_evaluated == 0
    assert warm.cache_hits == 2
    assert warm.steps_integrated == 0
    for got, want in zip(second, first):
        assert got.vmin_late == want.vmin_late  # bit-exact replay
        assert got.cached


def test_disk_tier_survives_fresh_process_state(tmp_path):
    """A new cache instance (fresh memory) replays from disk."""
    jobs = jobs_for(0.25)
    writer = ResultCache(disk_dir=tmp_path)
    first = run_campaign(jobs, cache=writer)

    reader = ResultCache(disk_dir=tmp_path, version=writer.version)
    telemetry = Telemetry()
    second = run_campaign(jobs, cache=reader, telemetry=telemetry)
    assert telemetry.jobs_evaluated == 0
    assert reader.stats.hits_disk == 1
    assert second[0].vmin_late == first[0].vmin_late


def test_duplicate_jobs_evaluated_once(tmp_path):
    job = jobs_for(0.2)[0]
    cache = ResultCache(disk_dir=tmp_path)
    telemetry = Telemetry()
    campaign = run_campaign(
        [job, job, job], cache=cache, telemetry=telemetry, evaluate=_synthetic
    )
    assert telemetry.jobs_evaluated == 1
    assert len(campaign) == 3
    assert campaign[1].vmin_late == campaign[0].vmin_late
    assert campaign[1].cached and campaign[2].cached


def test_custom_evaluate_never_touches_default_cache():
    """cache="default" + custom evaluate must not poison shared entries."""
    telemetry = Telemetry()
    run_campaign(jobs_for(0.2), evaluate=_synthetic, telemetry=telemetry)
    # No cache in play: neither hits nor misses were recorded.
    assert telemetry.cache_hits == 0
    assert telemetry.cache_misses == 0


# --------------------------------------------------------------------- #
# Telemetry export.
# --------------------------------------------------------------------- #

def test_telemetry_report_round_trip(tmp_path):
    telemetry = Telemetry()
    run_campaign(
        jobs_for(0.1, 0.2), cache=None, telemetry=telemetry,
        evaluate=_synthetic,
    )
    path = tmp_path / "report.json"
    telemetry.to_json(str(path))
    import json

    data = json.loads(path.read_text())
    assert data["jobs"]["total"] == 2
    assert data["jobs"]["evaluated"] == 2
    assert data["engine"]["steps_integrated"] == 14
    assert len(data["records"]) == 2
    summary = telemetry.summary()
    assert "2 total" in summary
    assert "cache" in summary


def test_montecarlo_parallel_matches_serial_via_runtime(fast_options):
    """End-to-end: the rewired scatter path is bit-identical to serial."""
    import numpy as np

    from repro.montecarlo.analysis import scatter_analysis
    from repro.montecarlo.parallel import scatter_analysis_parallel
    from repro.montecarlo.sampling import sample_population

    samples = sample_population(2, fF(160), rng=np.random.default_rng(42))
    skews = [0.0, ns(0.4)]
    serial = scatter_analysis(samples, skews, options=fast_options)
    parallel = scatter_analysis_parallel(
        samples, skews, options=fast_options, n_workers=2, chunksize=1,
        cache=None,
    )
    assert len(parallel) == len(serial)
    for a, b in zip(serial, parallel):
        assert a.sample_index == b.sample_index
        assert a.skew == b.skew
        assert a.vmin == b.vmin  # bit-exact across process boundaries


# --------------------------------------------------------------------- #
# Streaming progress and cancellation.
# --------------------------------------------------------------------- #

def _briefly_slow_synthetic(job):
    time.sleep(0.02)
    return _synthetic(job)


def test_progress_callback_fires_per_job():
    seen = []
    jobs = jobs_for(0.1, 0.2, 0.3)
    run_campaign(
        jobs, cache=None, evaluate=_synthetic,
        progress=lambda index, result: seen.append((index, result)),
    )
    assert sorted(index for index, _ in seen) == [0, 1, 2]
    for index, result in seen:
        assert isinstance(result, JobResult)
        assert result.skew == jobs[index].skew


def test_progress_includes_cache_hits(fresh_cache):
    cache = ResultCache(disk_dir=None)
    jobs = jobs_for(0.1, 0.2)
    run_campaign(jobs, cache=cache, evaluate=_synthetic)
    seen = []
    run_campaign(
        jobs, cache=cache, evaluate=_synthetic,
        progress=lambda index, result: seen.append(result),
    )
    assert len(seen) == 2
    assert all(result.cached for result in seen)


def test_progress_default_is_bit_identical(fresh_cache):
    jobs = jobs_for(0.1, 0.2)
    plain = run_campaign(jobs, cache=None, evaluate=_synthetic)
    with_progress = run_campaign(
        jobs, cache=None, evaluate=_synthetic,
        progress=lambda index, result: None,
    )
    assert [r.skew for r in plain] == [r.skew for r in with_progress]
    assert [r.vmin_y1 for r in plain] == [r.vmin_y1 for r in with_progress]


@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_cancel_event_aborts_campaign(backend):
    import threading

    from repro.errors import CampaignCancelledError

    cancel = threading.Event()
    done = []

    def progress(index, result):
        done.append(index)
        if len(done) >= 2:
            cancel.set()

    with pytest.raises(CampaignCancelledError) as excinfo:
        run_campaign(
            jobs_for(*[0.01 * k for k in range(12)]),
            backend=backend, max_workers=2, chunksize=1,
            cache=None, evaluate=_briefly_slow_synthetic,
            progress=progress, cancel_event=cancel,
        )
    assert excinfo.value.completed >= 2
    assert excinfo.value.completed < 12


def test_cancelled_campaign_resumes_from_checkpoint(tmp_path):
    import threading

    from repro.errors import CampaignCancelledError

    journal = tmp_path / "journal.jsonl"
    cancel = threading.Event()
    jobs = jobs_for(*[0.02 * k for k in range(6)])

    def progress(index, result):
        if index >= 2:
            cancel.set()

    with pytest.raises(CampaignCancelledError):
        run_campaign(
            jobs, cache=None, evaluate=_synthetic,
            checkpoint=str(journal), progress=progress, cancel_event=cancel,
        )
    # Every completed job was journaled before the abort; the resumed
    # run replays them and computes only the remainder.
    telemetry = Telemetry()
    campaign = run_campaign(
        jobs, cache=None, evaluate=_synthetic,
        checkpoint=str(journal), resume=True, telemetry=telemetry,
    )
    assert len(campaign) == 6
    assert telemetry.jobs_resumed >= 3
    assert [r.skew for r in campaign] == [job.skew for job in jobs]


def test_cancel_preempts_even_under_collect():
    import threading

    from repro.errors import CampaignCancelledError

    cancel = threading.Event()
    cancel.set()  # cancelled before the first job
    with pytest.raises(CampaignCancelledError):
        run_campaign(
            jobs_for(0.1, 0.2), cache=None, evaluate=_synthetic,
            on_error="collect", cancel_event=cancel,
        )
