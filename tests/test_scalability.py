"""Scalability smoke tests: larger instances of every substrate."""

import numpy as np
import pytest

from repro.clocktree.dme import build_zero_skew_tree
from repro.clocktree.htree import build_h_tree
from repro.clocktree.rc import sink_delays
from repro.clocktree.skew import select_critical_pairs
from repro.clocktree.tree import Buffer
from repro.logicsim.scan import ScanChainCircuit
from repro.logicsim.synth import at_speed_test, build_pipeline
from repro.testing.scheme import ClockTestingScheme
from repro.units import ns


def test_large_h_tree():
    """4 levels = 256 sinks; timing stays exact-zero-skew and fast."""
    tree = build_h_tree(levels=4, buffer=Buffer())
    delays = sink_delays(tree)
    assert len(delays) == 256
    values = np.array(list(delays.values()))
    assert values.max() - values.min() < 1e-15


def test_large_dme_instance():
    rng = np.random.default_rng(99)
    sinks = [
        (f"s{k}",
         (float(rng.uniform(0, 15e-3)), float(rng.uniform(0, 15e-3))),
         float(rng.uniform(20e-15, 120e-15)))
        for k in range(128)
    ]
    tree = build_zero_skew_tree(sinks)
    delays = np.array(list(sink_delays(tree).values()))
    assert delays.max() - delays.min() < 1e-6 * delays.mean()
    assert len(tree.sinks()) == 128


def test_scheme_plan_on_large_tree():
    tree = build_h_tree(levels=3, buffer=Buffer())  # 64 sinks
    scheme = ClockTestingScheme.plan(
        tree, tau_min=ns(0.12), max_distance=3e-3, top_k=16
    )
    assert len(scheme.placements) == 16
    observations = scheme.observe()
    assert all(not o.flagged for o in observations)


def test_pair_selection_scales():
    tree = build_h_tree(levels=3)
    pairs = select_critical_pairs(tree, max_distance=20e-3)
    # 64 sinks -> C(64,2) = 2016 candidate pairs, all within range.
    assert len(pairs) == 2016


def test_deep_pipeline_simulation():
    stages = [ns(2.0)] * 12
    circuit, flops = build_pipeline(stages)
    result = at_speed_test(circuit, flops, period=ns(10), n_cycles=20)
    assert result["passed"]
    assert len(flops) == 13


def test_long_scan_chain():
    chain = ScanChainCircuit(n=32)
    pattern = [k % 2 for k in range(32)]
    stream, _ = chain.run_capture_and_shift(pattern)
    assert stream == list(reversed(pattern))


def test_wide_analog_netlist():
    """Four sensors grafted on shared clocks: ~50 free nodes, one run."""
    from repro.analog.engine import TransientOptions, transient
    from repro.circuit.compose import graft, prefixed_guess
    from repro.circuit.netlist import Netlist
    from repro.core.sensing import SkewSensor
    from repro.devices.sources import clock_pair

    phi1, phi2 = clock_pair(ns(20), ns(0.2), ns(0.2), skew=ns(0.6), delay=ns(2))
    host = Netlist(name="bank")
    host.drive_dc("vdd", 5.0)
    host.drive("phi1", phi1)
    host.drive("phi2", phi2)
    sensor = SkewSensor()
    initial = {}
    outputs = []
    for k in range(4):
        mapping = graft(
            host, sensor.build(), prefix=f"s{k}",
            connections={"phi1": "phi1", "phi2": "phi2"},
        )
        initial.update(prefixed_guess(sensor.dc_guess(), mapping))
        outputs.extend([mapping["y1"], mapping["y2"]])
    result = transient(
        host, t_stop=ns(12), record=outputs, initial=initial,
        options=TransientOptions(dt_max=200e-12, reltol=5e-3),
    )
    # Every instance reports the same 01 error indication.
    for k in range(4):
        assert result.wave(f"s{k}_y1").at(ns(8)) < 1.0
        assert result.wave(f"s{k}_y2").at(ns(8)) > 4.0
