"""Gate-level scan chain: capture + serial shift."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logicsim.scan import ScanChainCircuit


def test_chain_rejects_empty():
    with pytest.raises(ValueError):
        ScanChainCircuit(n=0)


def test_capture_bits_length_enforced():
    chain = ScanChainCircuit(n=3)
    with pytest.raises(ValueError):
        chain.run_capture_and_shift([1, 0])


def test_single_cell_capture():
    chain = ScanChainCircuit(n=1)
    stream, _ = chain.run_capture_and_shift([1])
    assert stream == [1]
    stream, _ = chain.run_capture_and_shift([0])
    assert stream == [0]


def test_shift_order_is_last_cell_first():
    chain = ScanChainCircuit(n=4)
    stream, _ = chain.run_capture_and_shift([1, 0, 0, 0])
    # cap0 sits furthest from scan_out: it emerges last.
    assert stream == [0, 0, 0, 1]


def test_all_patterns_of_three_bits():
    chain = ScanChainCircuit(n=3)
    for pattern in range(8):
        bits = [(pattern >> k) & 1 for k in range(3)]
        stream, _ = chain.run_capture_and_shift(bits)
        assert stream == list(reversed(bits)), bits


def test_scan_in_refills_chain():
    chain = ScanChainCircuit(n=2)
    stream, trace = chain.run_capture_and_shift(
        [1, 1], scan_in_bits=[0, 0]
    )
    assert stream == [1, 1]
    # After shifting, the cells hold the scanned-in zeros.
    assert trace.changes["sq0"][-1][1] == 0
    assert trace.changes["sq1"][-1][1] == 0


@settings(max_examples=25, deadline=None)
@given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=6))
def test_capture_shift_roundtrip_property(bits):
    """Whatever is captured emerges serially, in reverse cell order."""
    chain = ScanChainCircuit(n=len(bits))
    stream, _ = chain.run_capture_and_shift(bits)
    assert stream == list(reversed(bits))
