"""The Fig.-6 testing scheme over a clock tree."""

import pytest

from repro.clocktree.faults import CrosstalkCoupling, ResistiveOpen
from repro.clocktree.htree import build_h_tree
from repro.clocktree.tree import Buffer
from repro.testing.scheme import ClockTestingScheme
from repro.units import ns


@pytest.fixture()
def scheme():
    tree = build_h_tree(levels=2, buffer=Buffer())
    return ClockTestingScheme.plan(
        tree, tau_min=ns(0.12), max_distance=6e-3, top_k=4
    )


def test_plan_places_requested_sensor_count(scheme):
    assert len(scheme.placements) == 4
    assert len(scheme.scan_path) == 4


def test_nominal_tree_raises_no_flags(scheme):
    observations = scheme.observe()
    assert all(not o.flagged for o in observations)
    assert scheme.scan_out() == [0, 0, 0, 0]
    assert not scheme.online_alarm()


def test_injected_open_flags_monitored_pair(scheme):
    victim = scheme.placements[0].pair.sink_a
    fault = ResistiveOpen(node=victim, extra_resistance=8000.0)
    observations = scheme.observe(fault.apply(scheme.tree))
    flagged = [o for o in observations if o.flagged]
    assert flagged, "an 8 kohm open on a monitored wire must be seen"
    assert any(victim in o.placement.indicator.name for o in flagged)
    assert scheme.online_alarm()
    assert 1 in scheme.scan_out()


def test_indicators_latch_across_observations(scheme):
    victim = scheme.placements[0].pair.sink_a
    fault = ResistiveOpen(node=victim, extra_resistance=8000.0)
    scheme.observe(fault.apply(scheme.tree))
    # Fault disappears (transient); the latch must persist.
    scheme.observe()
    assert scheme.flagged_pairs()


def test_reset_clears_latches(scheme):
    victim = scheme.placements[0].pair.sink_a
    scheme.observe(
        ResistiveOpen(node=victim, extra_resistance=8000.0).apply(scheme.tree)
    )
    scheme.reset()
    assert scheme.flagged_pairs() == []
    assert scheme.scan_out() == [0, 0, 0, 0]


def test_skew_below_sensitivity_not_flagged(scheme):
    victim = scheme.placements[0].pair.sink_a
    tiny = CrosstalkCoupling(node=victim, coupling_capacitance=5e-15)
    observations = scheme.observe(tiny.apply(scheme.tree))
    assert all(not o.flagged for o in observations)


def test_behavioural_code_convention():
    assert ClockTestingScheme._behavioural_code(ns(0.2), ns(0.1)) == (0, 1)
    assert ClockTestingScheme._behavioural_code(-ns(0.2), ns(0.1)) == (1, 0)
    assert ClockTestingScheme._behavioural_code(ns(0.05), ns(0.1)) == (0, 0)


def test_nominal_skews_zero_on_htree(scheme):
    for skew in scheme.nominal_skews().values():
        assert abs(skew) < 1e-15


def test_electrical_observation_agrees_with_behavioural(scheme, fast_options):
    """Ground-truth transistor-level evaluation of one faulted pair agrees
    with the calibrated behavioural model."""
    victim = scheme.placements[0].pair.sink_a
    fault = ResistiveOpen(node=victim, extra_resistance=8000.0)
    faulty_tree = fault.apply(scheme.tree)

    behavioural = scheme.observe(faulty_tree)
    scheme.reset()
    electrical = scheme.observe(faulty_tree, electrical=True, options=fast_options)
    for b, e in zip(behavioural, electrical):
        assert b.code == e.code, b.placement.indicator.name
