"""Structure of the Fig.-1 sensing circuit netlist."""

import pytest

from repro.circuit.validate import validate
from repro.core.sensing import (
    PARALLEL_PULLUPS,
    SENSOR_TRANSISTORS,
    SensorSizing,
    SkewSensor,
)
from repro.devices.mosfet import MosfetType
from repro.units import fF, um


def test_ten_transistors_in_paper_order():
    netlist = SkewSensor().build()
    names = [m.name for m in netlist.mosfets]
    assert names == list(SENSOR_TRANSISTORS)


def test_polarity_split():
    """Six PMOS (pull-ups) and four NMOS (pull-downs)."""
    netlist = SkewSensor().build()
    pmos = [m.name for m in netlist.mosfets if m.mtype is MosfetType.PMOS]
    nmos = [m.name for m in netlist.mosfets if m.mtype is MosfetType.NMOS]
    assert sorted(pmos) == ["a", "b", "c", "f", "g", "h"]
    assert sorted(nmos) == ["d", "e", "i", "l"]


def test_parallel_pullups_share_terminals():
    """b and c (g and h) join the same internal node to the same output -
    the 'parallel pull-up transistors' of Sec. 3."""
    netlist = SkewSensor().build()
    by_name = {m.name: m for m in netlist.mosfets}
    assert {by_name["b"].drain, by_name["b"].source} == {
        by_name["c"].drain, by_name["c"].source,
    }
    assert {by_name["g"].drain, by_name["g"].source} == {
        by_name["h"].drain, by_name["h"].source,
    }
    assert set(PARALLEL_PULLUPS) == {"b", "c", "g", "h"}


def test_feedback_cross_coupling():
    """Block A is gated by y2 (c, e) and block B by y1 (h, l)."""
    netlist = SkewSensor().build()
    by_name = {m.name: m for m in netlist.mosfets}
    assert by_name["c"].gate == "y2"
    assert by_name["e"].gate == "y2"
    assert by_name["h"].gate == "y1"
    assert by_name["l"].gate == "y1"


def test_pulldown_stacks():
    """Each output discharges through a two-NMOS series stack whose bottom
    device is feedback-gated ('the transistor driven by y1 (l)')."""
    netlist = SkewSensor().build()
    by_name = {m.name: m for m in netlist.mosfets}
    assert by_name["d"].drain == "y1" and by_name["d"].source == "pA"
    assert by_name["e"].drain == "pA" and by_name["e"].source == "0"
    assert by_name["i"].drain == "y2" and by_name["i"].source == "pB"
    assert by_name["l"].drain == "pB" and by_name["l"].source == "0"


def test_series_pullup_gated_by_other_clock():
    """a (f) is gated by the *other* clock - this is what puts the late
    block's output in high impedance during a skew."""
    netlist = SkewSensor().build()
    by_name = {m.name: m for m in netlist.mosfets}
    assert by_name["a"].gate == "phi2" and by_name["a"].source == "vdd"
    assert by_name["f"].gate == "phi1" and by_name["f"].source == "vdd"


def test_mirror_symmetry():
    """Block B is block A under the swap phi1<->phi2, y1<->y2."""
    netlist = SkewSensor().build()
    by_name = {m.name: m for m in netlist.mosfets}
    swap = {
        "phi1": "phi2", "phi2": "phi1", "y1": "y2", "y2": "y1",
        "nA": "nB", "pA": "pB", "vdd": "vdd", "0": "0",
    }
    mirror = {"a": "f", "b": "g", "c": "h", "d": "i", "e": "l"}
    for a_name, b_name in mirror.items():
        a_dev, b_dev = by_name[a_name], by_name[b_name]
        assert swap[a_dev.drain] == b_dev.drain
        assert swap[a_dev.gate] == b_dev.gate
        assert swap[a_dev.source] == b_dev.source
        assert a_dev.mtype is b_dev.mtype


def test_loads_attached():
    netlist = SkewSensor(load1=fF(80), load2=fF(240)).build()
    caps = {c.name: c for c in netlist.capacitors}
    assert caps["cload1"].capacitance == pytest.approx(fF(80))
    assert caps["cload2"].capacitance == pytest.approx(fF(240))


def test_zero_load_omits_capacitor():
    netlist = SkewSensor(load1=0.0, load2=0.0, parasitics=False).build()
    assert netlist.capacitors == []


def test_negative_load_rejected():
    with pytest.raises(ValueError):
        SkewSensor(load1=-fF(1))


def test_parasitics_toggle():
    bare = SkewSensor(parasitics=False).build()
    rich = SkewSensor(parasitics=True).build()
    assert len(rich.capacitors) > len(bare.capacitors)
    # Parasitics never load the ideal clock inputs or rails.
    for cap in rich.capacitors:
        if cap.name.startswith("cpar_"):
            assert cap.a not in ("vdd", "phi1", "phi2")


def test_full_swing_adds_keepers():
    plain = SkewSensor(full_swing=False).build()
    keeper = SkewSensor(full_swing=True).build()
    assert len(keeper.mosfets) == len(plain.mosfets) + 6
    names = {m.name for m in keeper.mosfets}
    assert {"kp1", "kn1", "kw1", "kp2", "kn2", "kw2"} <= names


def test_netlist_validates_cleanly():
    sensor = SkewSensor()
    netlist = sensor.build()
    netlist.drive_dc("phi1", 0.0)
    netlist.drive_dc("phi2", 0.0)
    assert validate(netlist) == []


def test_custom_sizing_propagates():
    sizing = SensorSizing(w_n=um(3.0), w_p=um(7.0))
    netlist = SkewSensor(sizing=sizing).build()
    by_name = {m.name: m for m in netlist.mosfets}
    assert by_name["d"].w == pytest.approx(um(3.0))
    assert by_name["a"].w == pytest.approx(um(7.0))
