"""Sensitivity analysis (Fig. 4 machinery)."""

import numpy as np
import pytest

from repro.core.sensitivity import (
    SensitivityCurve,
    extract_tau_min,
    sweep_skew,
    vmin_for_skew,
)
from repro.units import VTH_INTERPRET, fF, ns


def test_curve_tau_min_interpolates():
    curve = SensitivityCurve(
        load=fF(160),
        slew=ns(0.2),
        skews=np.array([0.0, 1e-10, 2e-10]),
        vmins=np.array([1.0, 2.0, 4.0]),
        threshold=2.75,
    )
    # Crossing between 1e-10 (2.0 V) and 2e-10 (4.0 V).
    expected = 1e-10 + (2.75 - 2.0) / 2.0 * 1e-10
    assert curve.tau_min == pytest.approx(expected)


def test_curve_tau_min_none_when_never_crossing():
    curve = SensitivityCurve(
        load=fF(160), slew=ns(0.2),
        skews=np.array([0.0, 1e-10]), vmins=np.array([1.0, 2.0]),
    )
    assert curve.tau_min is None


def test_curve_tau_min_at_first_point():
    curve = SensitivityCurve(
        load=fF(160), slew=ns(0.2),
        skews=np.array([1e-10, 2e-10]), vmins=np.array([3.0, 4.0]),
    )
    assert curve.tau_min == pytest.approx(1e-10)


def test_vmin_monotone_in_skew(fast_options):
    """The Fig.-4 curves rise monotonically with tau."""
    taus = [0.0, ns(0.1), ns(0.25), ns(0.5)]
    vmins = [
        vmin_for_skew(t, fF(160), ns(0.2), options=fast_options) for t in taus
    ]
    assert all(a < b for a, b in zip(vmins, vmins[1:]))


def test_zero_skew_vmin_below_threshold(fast_options):
    assert vmin_for_skew(0.0, fF(160), ns(0.2), options=fast_options) < VTH_INTERPRET


def test_large_skew_vmin_near_vdd(fast_options):
    assert vmin_for_skew(ns(2.0), fF(160), ns(0.2), options=fast_options) > 4.5


def test_sweep_returns_curve(fast_options):
    taus = [0.0, ns(0.2), ns(0.5)]
    curve = sweep_skew(fF(80), ns(0.2), taus, options=fast_options)
    assert curve.load == fF(80)
    assert len(curve.vmins) == 3
    assert curve.tau_min is not None
    assert 0.0 < curve.tau_min < ns(0.5)


def test_tau_min_grows_with_load(fast_options):
    """The paper's central sensitivity trend: heavier load -> slower y1
    fall -> larger minimum detectable skew."""
    tm = {
        c: extract_tau_min(
            fF(c), tolerance=ns(0.01), options=fast_options
        )
        for c in (80, 240)
    }
    assert tm[80] < tm[240]


def test_tau_min_in_subnanosecond_band(fast_options):
    """Sensitivities land in the paper's sub-0.25 ns band."""
    tau = extract_tau_min(fF(160), tolerance=ns(0.01), options=fast_options)
    assert ns(0.03) < tau < ns(0.25)


@pytest.mark.slow
def test_tau_min_insensitive_to_slew(fast_options):
    """Fig. 4: 'the circuit is rather unsensitive to the slope of clock
    signal waveforms' - a 4x slew change moves tau_min by < 20 %."""
    fast = extract_tau_min(
        fF(160), slew=ns(0.1), tolerance=ns(0.005), options=fast_options
    )
    slow = extract_tau_min(
        fF(160), slew=ns(0.4), tolerance=ns(0.005), options=fast_options
    )
    assert abs(slow - fast) / fast < 0.2


def test_extract_tau_min_validates_bracket(fast_options):
    with pytest.raises(ValueError):
        extract_tau_min(fF(160), tau_hi=ns(0.001), options=fast_options)
