"""HTTP API: routes, error mapping, SSE streaming, metrics, cache ops."""

from __future__ import annotations

import threading
import time
import urllib.request

import pytest

from repro.service.api import create_server
from repro.service.client import ServiceClient, ServiceError


@pytest.fixture
def service(tmp_path, synthetic_kind, fresh_cache):
    """A live server on an ephemeral port with a tmp state dir."""
    server = create_server(state_dir=str(tmp_path / "state"), quota=3)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    # retries=0: error-mapping tests want the first answer, not the
    # retried one (quota 429s would otherwise resolve themselves once
    # the greedy client's campaigns finish).
    client = ServiceClient(f"http://127.0.0.1:{server.port}", retries=0)
    yield client
    server.shutdown_all()
    thread.join(5.0)


def test_healthz(service):
    health = service.health()
    assert health["status"] == "ok"
    assert "synthetic" in health["kinds"]


def test_submit_status_result_roundtrip(service):
    record = service.submit({"kind": "synthetic", "jobs": 3})
    cid = record["campaign_id"]
    assert record["state"] == "queued"
    final = service.wait(cid, timeout=30)
    assert final["state"] == "done"
    assert final["completed"] == 3
    result = service.result(cid)
    assert result["kind"] == "synthetic"
    assert result["n"] == 3
    listed = service.list()
    assert [r["campaign_id"] for r in listed] == [cid]


def test_bad_spec_maps_to_400(service):
    with pytest.raises(ServiceError) as excinfo:
        service.submit({"kind": "no-such-kind"})
    assert excinfo.value.status == 400
    assert "unknown campaign kind" in excinfo.value.message
    with pytest.raises(ServiceError) as excinfo:
        service.submit({"kind": "synthetic", "bogus_key": 1})
    assert excinfo.value.status == 400


def test_malformed_body_maps_to_400(service):
    request = urllib.request.Request(
        service.base_url + "/campaigns",
        data=b"this is not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400


def test_unknown_campaign_maps_to_404(service):
    with pytest.raises(ServiceError) as excinfo:
        service.status("deadbeef0000")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        service.result("deadbeef0000")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        service.cancel("deadbeef0000")
    assert excinfo.value.status == 404


def test_result_before_done_maps_to_409(service):
    record = service.submit(
        {"kind": "synthetic", "jobs": 100, "sleep_s": 0.02}
    )
    with pytest.raises(ServiceError) as excinfo:
        service.result(record["campaign_id"])
    assert excinfo.value.status == 409
    service.cancel(record["campaign_id"])


def test_quota_maps_to_429(service):
    for _ in range(3):
        service.submit(
            {"kind": "synthetic", "jobs": 50, "sleep_s": 0.02},
            client="greedy",
        )
    with pytest.raises(ServiceError) as excinfo:
        service.submit({"kind": "synthetic"}, client="greedy")
    assert excinfo.value.status == 429
    # Other clients still get through.
    service.submit({"kind": "synthetic"}, client="modest")


def test_cancel_running_campaign(service):
    record = service.submit(
        {"kind": "synthetic", "jobs": 200, "sleep_s": 0.02}
    )
    cid = record["campaign_id"]
    deadline = time.monotonic() + 10
    while (service.status(cid)["completed"] < 2
           and time.monotonic() < deadline):
        time.sleep(0.02)
    outcome = service.cancel(cid)
    assert outcome["cancelled"] is True
    final = service.wait(cid, timeout=30)
    assert final["state"] == "cancelled"
    assert 0 < final["completed"] < 200


def test_sse_stream_has_one_event_per_job(service):
    record = service.submit({"kind": "synthetic", "jobs": 4})
    events = list(service.stream_events(record["campaign_id"], timeout=30))
    kinds = [event["event"] for event in events]
    assert kinds[0] == "started"
    assert kinds[-1] == "done"
    assert kinds.count("job") == 4


def test_sse_cursor_resumes(service):
    record = service.submit({"kind": "synthetic", "jobs": 4})
    cid = record["campaign_id"]
    service.wait(cid, timeout=30)
    full = list(service.stream_events(cid, timeout=10))
    tail = list(service.stream_events(cid, start=2, timeout=10))
    assert tail == full[2:]


def test_metrics_shape(service):
    record = service.submit({"kind": "synthetic", "jobs": 2})
    service.wait(record["campaign_id"], timeout=30)
    metrics = service.metrics()
    assert metrics["campaigns"]["done"] == 1
    assert metrics["campaigns_executed"] == 1
    assert "queue_depth" in metrics
    assert metrics["telemetry"]["jobs"]["total"] == 2
    assert "hits" in metrics["cache"]
    assert "disk_bytes" in metrics["cache_disk"]


def test_cache_endpoints(service, fresh_cache):
    from repro.runtime import get_cache

    cache = get_cache()
    for index in range(4):
        cache.put(f"{index:064d}", {"payload": "x" * 32})
    info = service.cache_info()
    assert info["disk_bytes"] > 0
    before = info["disk_bytes"]
    pruned = service.prune_cache(max_bytes=before // 2)
    assert pruned["removed"] >= 1
    assert pruned["disk_bytes"] <= before // 2


def test_server_restart_resumes_from_journal(tmp_path, synthetic_kind,
                                             fresh_cache):
    """Kill the server mid-campaign; a new one finishes the job."""
    state = str(tmp_path / "state")
    server = create_server(state_dir=state)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(f"http://127.0.0.1:{server.port}")
    record = client.submit({"kind": "synthetic", "jobs": 60, "sleep_s": 0.02})
    cid = record["campaign_id"]
    deadline = time.monotonic() + 10
    while (client.status(cid)["completed"] < 3
           and time.monotonic() < deadline):
        time.sleep(0.02)
    server.shutdown_all()  # graceful stop: campaign requeued for resume

    relaunched = create_server(state_dir=state)
    threading.Thread(target=relaunched.serve_forever, daemon=True).start()
    client2 = ServiceClient(f"http://127.0.0.1:{relaunched.port}")
    status = client2.status(cid)
    assert status["resume"] is True
    final = client2.wait(cid, timeout=60)
    assert final["state"] == "done"
    assert final["completed"] == 60
    result = client2.result(cid)
    assert result["n"] == 60
    assert result["resumed"] >= 3  # first incarnation's jobs replayed
    relaunched.shutdown_all()


def test_unknown_endpoint_404(service):
    request = urllib.request.Request(
        service.base_url + "/nonsense", method="POST", data=b"{}"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 404
