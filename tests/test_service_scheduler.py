"""Campaign scheduler: ordering, cancellation, timeouts, resume, quota."""

from __future__ import annotations

import time

import pytest

from repro.service.scheduler import CampaignScheduler, QuotaExceededError
from repro.service.store import JobStore


def wait_for(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def wait_terminal(scheduler, campaign_id, timeout=30.0):
    assert wait_for(
        lambda: scheduler.store.get(campaign_id).terminal, timeout
    ), f"campaign {campaign_id} never became terminal"
    return scheduler.store.get(campaign_id)


@pytest.fixture
def scheduler(tmp_path, synthetic_kind):
    sched = CampaignScheduler(JobStore(tmp_path))
    yield sched
    sched.stop()
    sched.store.close()


def test_lifecycle_and_events(scheduler):
    scheduler.start()
    record = scheduler.submit({"kind": "synthetic", "jobs": 3})
    final = wait_terminal(scheduler, record.campaign_id)
    assert final.state == "done"
    assert final.completed == 3 and final.total == 3
    events = scheduler.events(record.campaign_id)
    kinds = [event["event"] for event in events]
    assert kinds[0] == "started"
    assert kinds[-1] == "done"
    # At least one event per completed job, each with its progress.
    job_events = [e for e in events if e["event"] == "job"]
    assert len(job_events) == 3
    assert [e["done"] for e in job_events] == [1, 2, 3]
    result = scheduler.store.load_result(record.campaign_id)
    assert result["n"] == 3


def test_priority_order_with_fifo_tiebreak(tmp_path, synthetic_kind):
    # Submit before starting the worker so ordering is deterministic.
    scheduler = CampaignScheduler(JobStore(tmp_path))
    low1 = scheduler.submit({"kind": "synthetic", "tag": "low1"})
    high = scheduler.submit({"kind": "synthetic", "tag": "high"},
                            priority=5)
    low2 = scheduler.submit({"kind": "synthetic", "tag": "low2"})
    scheduler.start()
    for record in (low1, high, low2):
        wait_terminal(scheduler, record.campaign_id)
    scheduler.stop()
    scheduler.store.close()
    # Highest priority first; equal priorities keep submission order.
    assert synthetic_kind == ["high", "low1", "low2"]


def test_cancel_queued_campaign(tmp_path, synthetic_kind):
    scheduler = CampaignScheduler(JobStore(tmp_path))  # worker not started
    record = scheduler.submit({"kind": "synthetic"})
    assert scheduler.cancel(record.campaign_id) is True
    final = scheduler.store.get(record.campaign_id)
    assert final.state == "cancelled"
    assert final.error == "cancel"
    # Cancelling again is a no-op on a terminal campaign.
    assert scheduler.cancel(record.campaign_id) is False
    scheduler.stop()
    scheduler.store.close()


def test_cancel_running_campaign_mid_flight(scheduler):
    scheduler.start()
    record = scheduler.submit(
        {"kind": "synthetic", "jobs": 200, "sleep_s": 0.02}
    )
    cid = record.campaign_id
    assert wait_for(lambda: scheduler.store.get(cid).completed >= 2)
    assert scheduler.cancel(cid) is True
    final = wait_terminal(scheduler, cid)
    assert final.state == "cancelled"
    assert final.error == "cancel"
    assert 0 < final.completed < 200
    kinds = [event["event"] for event in scheduler.events(cid)]
    assert kinds[-1] == "cancelled"


def test_per_campaign_timeout(scheduler):
    scheduler.start()
    record = scheduler.submit({
        "kind": "synthetic", "jobs": 500, "sleep_s": 0.02,
        "timeout_s": 0.3,
    })
    final = wait_terminal(scheduler, record.campaign_id)
    assert final.state == "cancelled"
    assert final.error == "timeout"
    assert final.completed < 500


def test_failed_campaign_records_error(scheduler):
    scheduler.start()
    record = scheduler.submit({"kind": "synthetic", "jobs": 3, "fail_at": 1})
    final = wait_terminal(scheduler, record.campaign_id)
    assert final.state == "failed"
    assert "synthetic failure" in final.error
    kinds = [event["event"] for event in scheduler.events(record.campaign_id)]
    assert kinds[-1] == "failed"


def test_shutdown_requeues_then_restart_resumes(tmp_path, synthetic_kind):
    store = JobStore(tmp_path)
    scheduler = CampaignScheduler(store)
    scheduler.start()
    record = scheduler.submit(
        {"kind": "synthetic", "jobs": 50, "sleep_s": 0.02}
    )
    cid = record.campaign_id
    assert wait_for(lambda: store.get(cid).completed >= 3)
    scheduler.stop()  # graceful: requeue, do not cancel
    interrupted = store.get(cid)
    assert interrupted.state == "queued"
    assert interrupted.resume is True
    already = interrupted.completed
    assert 0 < already < 50
    store.close()

    # A fresh incarnation over the same state dir picks the campaign up
    # and resumes from the checkpoint journal: the jobs completed by the
    # first incarnation are replayed, not recomputed.
    revived_store = JobStore(tmp_path)
    revived = CampaignScheduler(revived_store)
    revived.start()
    final = wait_terminal(revived, cid, timeout=60.0)
    assert final.state == "done"
    assert final.completed == 50
    result = revived_store.load_result(cid)
    assert result["n"] == 50
    assert result["resumed"] >= already
    revived.stop()
    revived_store.close()


def test_quota_rejection(tmp_path, synthetic_kind):
    scheduler = CampaignScheduler(JobStore(tmp_path), quota=2)
    scheduler.submit({"kind": "synthetic"}, client="alice")
    scheduler.submit({"kind": "synthetic"}, client="alice")
    with pytest.raises(QuotaExceededError):
        scheduler.submit({"kind": "synthetic"}, client="alice")
    # Another client is unaffected.
    scheduler.submit({"kind": "synthetic"}, client="bob")
    scheduler.stop()
    scheduler.store.close()


def test_metrics_shape(scheduler):
    scheduler.start()
    record = scheduler.submit({"kind": "synthetic", "jobs": 2})
    wait_terminal(scheduler, record.campaign_id)
    metrics = scheduler.metrics()
    assert metrics["campaigns"]["done"] == 1
    assert metrics["queue_depth"] == 0
    assert metrics["campaigns_executed"] == 1
    assert metrics["telemetry"]["jobs"]["total"] == 2


def test_restart_scheduler_picks_up_pending(tmp_path, synthetic_kind):
    store = JobStore(tmp_path)
    store.submit({"kind": "synthetic", "tag": "orphan"})
    store.close()
    # The scheduler's constructor enqueues what the store replayed.
    revived_store = JobStore(tmp_path)
    scheduler = CampaignScheduler(revived_store)
    scheduler.start()
    cid = revived_store.list()[0].campaign_id
    final = wait_terminal(scheduler, cid)
    assert final.state == "done"
    assert synthetic_kind == ["orphan"]
    scheduler.stop()
    revived_store.close()
