"""Service job store: journal durability, replay, lifecycle, quotas."""

from __future__ import annotations

import json

import pytest

from repro.service.specs import SpecError
from repro.service.store import (
    JobStore,
    STATES,
    TERMINAL_STATES,
    default_state_dir,
)

SPEC = {"kind": "sensitivity", "loads_ff": [160.0], "slews_ns": [0.2],
        "points": 3, "tau_max_ns": 0.2}


def test_default_state_dir_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / "svc"))
    assert default_state_dir() == tmp_path / "svc"
    monkeypatch.delenv("REPRO_SERVICE_DIR")
    assert default_state_dir().name == "service"


def test_states_taxonomy():
    assert TERMINAL_STATES < set(STATES)
    assert "queued" not in TERMINAL_STATES
    assert "running" not in TERMINAL_STATES


def test_submit_normalizes_and_persists(tmp_path):
    store = JobStore(tmp_path)
    record = store.submit(SPEC, client="alice", priority=3)
    assert record.state == "queued"
    assert record.client == "alice"
    assert record.priority == 3
    # The journaled spec carries every default explicitly.
    assert record.spec["backend"] == "serial"
    assert record.spec["points"] == 3
    assert record.campaign_id in store
    assert store.campaign_dir(record.campaign_id).is_dir()


def test_submit_rejects_bad_spec(tmp_path):
    store = JobStore(tmp_path)
    with pytest.raises(SpecError):
        store.submit({"kind": "no-such-kind"})
    with pytest.raises(SpecError):
        store.submit({"loads_ffff": [1.0]})
    assert store.list() == []  # nothing journaled


def test_lifecycle_transitions(tmp_path):
    store = JobStore(tmp_path)
    record = store.submit(SPEC)
    cid = record.campaign_id
    store.mark_running(cid, total=3)
    assert store.get(cid).state == "running"
    assert store.get(cid).total == 3
    store.mark_progress(cid, 2)
    assert store.get(cid).completed == 2
    store.mark_done(cid, {"kind": "sensitivity", "curves": []})
    final = store.get(cid)
    assert final.terminal and final.state == "done"
    assert final.completed == 3
    assert store.load_result(cid) == {"kind": "sensitivity", "curves": []}


def test_result_written_before_terminal_entry(tmp_path):
    store = JobStore(tmp_path)
    cid = store.submit(SPEC).campaign_id
    store.mark_running(cid)
    store.mark_done(cid, {"answer": 42})
    # A replayed store sees the terminal state AND can load the result:
    # mark_done persists the payload before journaling "done".
    replayed = JobStore(tmp_path)
    assert replayed.get(cid).state == "done"
    assert replayed.load_result(cid) == {"answer": 42}


def test_restart_requeues_interrupted_campaign(tmp_path):
    store = JobStore(tmp_path)
    cid = store.submit(SPEC).campaign_id
    store.mark_running(cid, total=3)
    store.mark_progress(cid, 2)
    store.close()
    # Simulated kill -9: no terminal entry was journaled.  The next
    # incarnation finds the campaign queued again, flagged for resume.
    revived = JobStore(tmp_path)
    record = revived.get(cid)
    assert record.state == "queued"
    assert record.resume is True
    assert record.total == 3
    assert [r.campaign_id for r in revived.pending()] == [cid]


def test_replay_preserves_submission_order_and_seq(tmp_path):
    store = JobStore(tmp_path)
    first = store.submit(SPEC).campaign_id
    second = store.submit(SPEC).campaign_id
    store.close()
    revived = JobStore(tmp_path)
    assert [r.campaign_id for r in revived.list()] == [first, second]
    # New submissions continue the seq counter (FIFO survives restarts).
    third = revived.submit(SPEC)
    assert third.seq > revived.get(second).seq


def test_torn_journal_line_tolerated(tmp_path):
    store = JobStore(tmp_path)
    cid = store.submit(SPEC).campaign_id
    store.mark_running(cid)
    store.close()
    with open(store.journal_path, "a") as handle:
        handle.write('{"kind": "state", "id": "' + cid)  # torn mid-write
    revived = JobStore(tmp_path)
    assert revived.get(cid).state == "queued"  # running -> requeued


def test_cancelled_and_failed_terminal(tmp_path):
    store = JobStore(tmp_path)
    a = store.submit(SPEC, client="c").campaign_id
    b = store.submit(SPEC, client="c").campaign_id
    store.mark_cancelled(a, reason="timeout", completed=1)
    store.mark_failed(b, "ValueError: boom")
    assert store.get(a).state == "cancelled"
    assert store.get(a).error == "timeout"
    assert store.get(a).completed == 1
    assert store.get(b).state == "failed"
    assert "boom" in store.get(b).error
    # Terminal campaigns are kept terminal across replay.
    revived = JobStore(tmp_path)
    assert revived.get(a).state == "cancelled"
    assert revived.get(b).state == "failed"


def test_active_count_is_the_quota_gauge(tmp_path):
    store = JobStore(tmp_path)
    a = store.submit(SPEC, client="alice").campaign_id
    store.submit(SPEC, client="alice")
    store.submit(SPEC, client="bob")
    assert store.active_count("alice") == 2
    assert store.active_count("bob") == 1
    assert store.active_count("nobody") == 0
    store.mark_running(a)
    assert store.active_count("alice") == 2  # running still counts
    store.mark_done(a, {})
    assert store.active_count("alice") == 1  # terminal does not


def test_requeue_marks_resume(tmp_path):
    store = JobStore(tmp_path)
    cid = store.submit(SPEC).campaign_id
    store.mark_running(cid, total=5)
    store.requeue(cid, completed=2)
    record = store.get(cid)
    assert record.state == "queued"
    assert record.resume is True
    assert record.completed == 2


def test_counts_per_state(tmp_path):
    store = JobStore(tmp_path)
    store.submit(SPEC)
    done = store.submit(SPEC).campaign_id
    store.mark_running(done)
    store.mark_done(done, {})
    counts = store.counts()
    assert counts["queued"] == 1
    assert counts["done"] == 1
    assert counts["running"] == 0


def test_journal_is_checkpoint_format(tmp_path):
    """The store journal is readable by the checkpoint-layer reader."""
    from repro.runtime import iter_entries

    store = JobStore(tmp_path)
    cid = store.submit(SPEC).campaign_id
    store.mark_running(cid)
    store.close()
    entries = list(iter_entries(store.journal_path))
    kinds = [entry["kind"] for entry in entries]
    assert kinds[0] == "header"
    assert "campaign" in kinds and "state" in kinds
    # Every line is self-describing JSON (the append-only contract).
    with open(store.journal_path) as handle:
        for line in handle:
            assert json.loads(line)["kind"]
