"""Independent sources: DC, PWL, pulse, clock pair."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.sources import (
    ClockSource,
    DCSource,
    PulseSource,
    PWLSource,
    clock_pair,
)
from repro.units import ns


def test_dc_source_constant():
    src = DCSource(3.3)
    assert src.value(0.0) == 3.3
    assert src.value(1.0) == 3.3
    assert src.breakpoints(0.0, 1.0) == []


def test_pwl_interpolation():
    src = PWLSource([0.0, 1.0, 2.0], [0.0, 5.0, 5.0])
    assert src.value(0.5) == 2.5
    assert src.value(1.5) == 5.0


def test_pwl_clamps_outside_range():
    src = PWLSource([1.0, 2.0], [1.0, 3.0])
    assert src.value(0.0) == 1.0
    assert src.value(5.0) == 3.0


def test_pwl_breakpoints_filtered():
    src = PWLSource([0.0, 1.0, 2.0, 3.0], [0, 1, 0, 1])
    assert src.breakpoints(0.5, 2.5) == [1.0, 2.0]


def test_pwl_rejects_non_monotone_times():
    with pytest.raises(ValueError):
        PWLSource([0.0, 0.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        PWLSource([1.0, 0.5], [1.0, 2.0])


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.floats(0, 100), st.floats(-10, 10)),
        min_size=2, max_size=8, unique_by=lambda p: p[0],
    ),
    t=st.floats(0, 100),
)
def test_pwl_value_within_envelope(data, t):
    """Interpolation never exceeds the waveform's value range."""
    data = sorted(data)
    times = [p[0] for p in data]
    values = [p[1] for p in data]
    src = PWLSource(times, values)
    v = src.value(t)
    assert min(values) - 1e-9 <= v <= max(values) + 1e-9


def test_pulse_phases():
    src = PulseSource(
        v0=0.0, v1=5.0, delay=1e-9, rise=0.1e-9, fall=0.1e-9,
        width=3.9e-9, period=10e-9,
    )
    assert src.value(0.0) == 0.0
    assert src.value(1e-9) == 0.0          # edge start
    assert np.isclose(src.value(1.05e-9), 2.5)  # mid rise
    assert src.value(2e-9) == 5.0          # high
    assert src.value(6e-9) == 0.0          # back low
    assert src.value(11.05e-9) == pytest.approx(2.5)  # next period


def test_pulse_rejects_impossible_period():
    with pytest.raises(ValueError):
        PulseSource(0, 5, 0, rise=1, fall=1, width=1, period=2.5)


def test_pulse_breakpoints_cover_edges():
    src = PulseSource(
        v0=0.0, v1=5.0, delay=1e-9, rise=0.1e-9, fall=0.1e-9,
        width=3.9e-9, period=10e-9,
    )
    bps = src.breakpoints(0.0, 10e-9)
    for expected in (1e-9, 1.1e-9, 5e-9, 5.1e-9):
        assert any(np.isclose(expected, b) for b in bps)


def test_clock_levels_and_edges():
    clk = ClockSource(period=ns(20), slew=ns(0.2), vdd=5.0, delay=ns(2))
    assert clk.value(0.0) == 0.0
    assert clk.value(ns(2)) == 0.0
    assert np.isclose(clk.value(ns(2.1)), 2.5)
    assert clk.value(ns(5)) == 5.0
    assert clk.value(ns(15)) == 0.0


def test_clock_skew_shifts_edges():
    clk = ClockSource(period=ns(20), slew=ns(0.2), skew=ns(1), delay=ns(2))
    assert clk.value(ns(2.1)) == 0.0           # not risen yet
    assert np.isclose(clk.value(ns(3.1)), 2.5)  # mid edge, 1 ns later
    assert clk.rising_edge(0) == pytest.approx(ns(3))
    assert clk.rising_edge(1) == pytest.approx(ns(23))


def test_clock_negative_skew():
    clk = ClockSource(period=ns(20), slew=ns(0.2), skew=-ns(1), delay=ns(2))
    assert clk.rising_edge(0) == pytest.approx(ns(1))
    assert clk.value(ns(0.5)) == 0.0


def test_clock_validation():
    with pytest.raises(ValueError):
        ClockSource(period=ns(1), slew=ns(0.6))
    with pytest.raises(ValueError):
        ClockSource(period=-ns(1), slew=ns(0.1))


def test_clock_pair_convention():
    """Positive skew delays phi2 (the paper's tau)."""
    phi1, phi2 = clock_pair(ns(20), ns(0.2), ns(0.2), skew=ns(0.5), delay=ns(2))
    assert phi1.rising_edge(0) < phi2.rising_edge(0)
    assert phi2.rising_edge(0) - phi1.rising_edge(0) == pytest.approx(ns(0.5))


def test_clock_pair_independent_slews():
    phi1, phi2 = clock_pair(ns(20), ns(0.1), ns(0.4), skew=0.0)
    assert phi1.slew == ns(0.1)
    assert phi2.slew == ns(0.4)


@settings(max_examples=40, deadline=None)
@given(t=st.floats(0, 100e-9))
def test_clock_bounded_by_rails(t):
    clk = ClockSource(period=ns(20), slew=ns(0.3), delay=ns(1), vdd=5.0)
    assert 0.0 <= clk.value(t) <= 5.0
