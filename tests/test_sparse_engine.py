"""Sparse MNA engine tests: CSR assembly, factor reuse, whole trees.

The sparse subsystem (:mod:`repro.sparse`) re-implements the engine's
Newton matrix pipeline on a compile-time CSR pattern.  This module pins
the contract that makes it drop-in:

* **element-for-element assembly**: the CSR ``data`` vector equals the
  dense Newton matrix bit-for-bit on the shared pattern, on the same
  golden circuits the dense kernel is pinned on (sensing, stuck-on
  fault, buffered clock tree);
* **counter parity**: the (h, alpha)-keyed factor-reuse policy makes
  identical factor/reuse decisions through the sparse path;
* **backend degradation**: with scipy absent the dense-fallback backend
  produces bit-identical waveforms and reports itself in telemetry;
* **whole-tree equivalence**: a ~200-node full-chip netlist integrates
  to within 1 uV of the dense engine, and (slow tier) a 10^3-node tree
  completes on the sparse path.
"""

import numpy as np
import pytest

from repro.analog.compile import CompiledCircuit
from repro.analog.engine import (
    SPARSE_AUTO_NODES,
    TransientOptions,
    _resolve_jacobian_policy,
    transient,
)
from repro.clocktree.electrical import TreeNetlistBuilder
from repro.clocktree.htree import build_h_tree
from repro.clocktree.tree import Buffer
from repro.clocktree.whole_tree import (
    WholeTreeNetlistBuilder,
    select_sensor_pairs,
    simulate_whole_tree,
)
from repro.core.sensing import SkewSensor
from repro.devices.sources import ClockSource, clock_pair
from repro.faults.models import TransistorStuckOn
from repro.sparse import csr_plan
from repro.sparse.csr import SparseKernel
from repro.sparse import linalg as slinalg
from repro.units import fF, ns

FAST = TransientOptions(dt_max=ns(0.2), reltol=5e-3)

#: Dense-vs-sparse waveform agreement bar, volts (the subsystem's
#: contract; the golden circuits actually come out bit-identical).
WAVEFORM_TOL = 1e-6


def _sensing_netlist(skew=0.15):
    sensor = SkewSensor(load1=fF(160), load2=fF(160))
    phi1, phi2 = clock_pair(
        period=ns(20.0), slew1=ns(0.2), slew2=ns(0.2),
        skew=ns(skew), delay=ns(2.0), vdd=sensor.vdd,
    )
    return sensor.build(phi1=phi1, phi2=phi2), sensor


def _stuck_on_netlist():
    netlist, _ = _sensing_netlist()
    return TransistorStuckOn(transistor=netlist.mosfets[0].name).inject(
        netlist
    )


def _clocktree_netlist():
    tree = build_h_tree(levels=1, buffer=Buffer())
    sinks = sorted(s.name for s in tree.sinks())[:2]
    clock = ClockSource(period=ns(20), slew=ns(0.2), delay=ns(2))
    return TreeNetlistBuilder(tree, sinks).build(clock)


GOLDEN = {
    "sensing": lambda: _sensing_netlist()[0],
    "stuck_on": _stuck_on_netlist,
    "clocktree": _clocktree_netlist,
}


def _run_policy(netlist, policy, initial=None, t_stop=ns(12.0)):
    options = TransientOptions(
        dt_max=FAST.dt_max, reltol=FAST.reltol, jacobian_policy=policy
    )
    return transient(netlist, t_stop=t_stop, initial=initial,
                     options=options)


def _assert_waveforms_close(dense, sparse, tol=WAVEFORM_TOL):
    t_dense = np.asarray(dense.times)
    t_sparse = np.asarray(sparse.times)
    for node in dense.voltages:
        v_dense = np.asarray(dense.voltages[node])
        v_sparse = np.asarray(sparse.voltages[node])
        if np.array_equal(t_dense, t_sparse):
            worst = np.max(np.abs(v_dense - v_sparse))
        else:  # grids microshifted: compare on the dense grid
            worst = np.max(np.abs(np.interp(t_dense, t_sparse, v_sparse)
                                  - v_dense))
        assert worst <= tol, f"{node}: {worst:.3e} V off the dense path"


# --------------------------------------------------------------------- #
# Element-for-element CSR assembly equivalence.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_csr_newton_matrix_matches_dense_bitwise(name):
    circuit = CompiledCircuit.compile(GOLDEN[name]())
    nf = circuit.n_free
    rng = np.random.default_rng(42)
    v = circuit.source_voltages(ns(2.1))
    v[:nf] = rng.uniform(0.0, 5.0, nf)

    f_dense, j_dense = circuit.device_currents(v)
    plan = csr_plan(circuit)
    kernel = SparseKernel(circuit, plan)
    f_sparse, jw = kernel.eval(v, with_jacobian=True)

    # Residuals agree to rounding (COO bincount vs dense einsum order).
    np.testing.assert_allclose(f_sparse, f_dense, atol=1e-9, rtol=0)

    # The Newton matrix data is bit-for-bit the dense assembly on the
    # pattern, for the same (h, alpha) scaling the engine applies.
    dev = plan.device_data(jw, np.zeros(plan.nnz))
    for h, alpha in ((1e-10, 1.0), (2.5e-11, 0.5)):
        data = alpha * dev
        ch = np.zeros(plan.nnz)
        ch[plan.c_pos] = plan.c_val * (1.0 / h)
        data += ch
        reference = (alpha * j_dense[:nf, :nf]
                     + circuit.C[:nf, :nf] * (1.0 / h))
        scattered = plan.scatter_dense(data)
        assert np.array_equal(scattered, reference)


def test_csr_pattern_covers_all_contributors():
    circuit = CompiledCircuit.compile(_sensing_netlist()[0])
    plan = csr_plan(circuit)
    nf = circuit.n_free
    # Diagonal always present (shunt homotopy lands there).
    diag = plan.scatter_dense(
        np.bincount(plan.diag_pos, minlength=plan.nnz).astype(float)
    )
    assert np.array_equal(np.diag(diag), np.ones(nf))
    # Discard bucket: stamps touching driven nodes map to index nnz.
    assert plan.m_pos.max() <= plan.nnz
    assert plan.nnz < nf * nf


# --------------------------------------------------------------------- #
# Golden transients: waveforms + factor-reuse counter parity.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_sparse_transient_matches_dense(name):
    netlist = GOLDEN[name]()
    dense = _run_policy(netlist, "reuse")
    sparse = _run_policy(GOLDEN[name](), "sparse")
    _assert_waveforms_close(dense, sparse)


def test_factor_reuse_counter_parity():
    netlist, sensor = _sensing_netlist()
    dense = _run_policy(netlist, "reuse", initial=sensor.dc_guess())
    netlist2, sensor2 = _sensing_netlist()
    sparse = _run_policy(netlist2, "sparse", initial=sensor2.dc_guess())
    for counter in ("factorizations", "jacobian_reuses",
                    "newton_iterations", "assembles"):
        assert dense.kernel_stats[counter] == sparse.kernel_stats[counter], \
            counter
    assert sparse.kernel_stats["jacobian_reuses"] > 0
    assert sparse.kernel_stats["sparse_nnz"] > 0
    assert sparse.kernel_stats["sparse_fill_nnz"] >= \
        sparse.kernel_stats["sparse_nnz"]
    assert len(dense) == len(sparse)


def test_auto_policy_resolves_by_node_count():
    class Stub:
        pass

    small, big = Stub(), Stub()
    small.n_free = SPARSE_AUTO_NODES - 1
    big.n_free = SPARSE_AUTO_NODES
    auto = TransientOptions(jacobian_policy="auto")
    assert _resolve_jacobian_policy(small, auto) == "reuse"
    assert _resolve_jacobian_policy(big, auto) == "sparse"
    explicit = TransientOptions(jacobian_policy="sparse")
    assert _resolve_jacobian_policy(small, explicit) == "sparse"


def test_dense_size_guard_counts():
    from repro.analog import compile as compile_mod

    before = compile_mod.dense_jacobian_warnings
    compile_mod.note_dense_jacobian(1000, "reuse")
    compile_mod.note_dense_jacobian(1000, "reuse")
    assert compile_mod.dense_jacobian_warnings == before + 2


# --------------------------------------------------------------------- #
# scipy-absent fallback.
# --------------------------------------------------------------------- #
def test_numpy_fallback_without_scipy(monkeypatch):
    monkeypatch.setattr(slinalg, "_SPLU", None)
    monkeypatch.setattr(slinalg, "_SPLU_RESOLVED", True)
    try:
        assert not slinalg.scipy_available()
        netlist, sensor = _sensing_netlist()
        dense = _run_policy(netlist, "reuse", initial=sensor.dc_guess())
        netlist2, sensor2 = _sensing_netlist()
        sparse = _run_policy(netlist2, "sparse", initial=sensor2.dc_guess())
        # The fallback factors through the engine's own dense inverse, so
        # the run stays within the contract, and telemetry reports it.
        _assert_waveforms_close(dense, sparse)
        assert sparse.kernel_stats["sparse_fallback"] == 1
    finally:
        slinalg.reset_backend()


def test_singular_factor_reports_nonfinite_solve():
    lu = slinalg.SparseLU(
        indptr=np.array([0, 1, 2]), indices=np.array([0, 1]), n=2
    )
    lu.factor(np.zeros(2))  # singular: never raises
    out = lu.solve(np.ones(2), out=np.empty(2))
    assert not np.all(np.isfinite(out))


# --------------------------------------------------------------------- #
# Whole-tree scale.
# --------------------------------------------------------------------- #
def _whole_tree_netlist(levels, segments):
    tree = build_h_tree(levels, buffer=Buffer())
    builder = WholeTreeNetlistBuilder(tree, segments_per_wire=segments)
    clock = ClockSource(period=ns(4.0), slew=ns(0.2), delay=ns(1.0))
    netlist = builder.build(clock)
    builder.attach_sensors(select_sensor_pairs(tree, 2))
    return netlist, builder.initial_guess


def test_whole_tree_200_nodes_within_microvolt():
    netlist, initial = _whole_tree_netlist(levels=2, segments=5)
    assert len(netlist.nodes()) >= 180
    dense = _run_policy(netlist, "reuse", initial=initial, t_stop=ns(2.0))
    netlist2, initial2 = _whole_tree_netlist(levels=2, segments=5)
    sparse = _run_policy(netlist2, "sparse", initial=initial2,
                         t_stop=ns(2.0))
    _assert_waveforms_close(dense, sparse)


def test_whole_tree_simulation_readout():
    run = simulate_whole_tree(levels=1, n_sensors=2)
    assert run.n_nodes > 0
    assert len(run.skews) == 2
    assert all(abs(s) < ns(0.05) for s in run.skews.values())
    assert not run.flagged


def test_grid_topology_dead_driver_flags():
    healthy = simulate_whole_tree(
        topology="grid", grid_shape=(4, 4), n_sensors=2
    )
    assert not healthy.flagged
    degraded = simulate_whole_tree(
        topology="grid", grid_shape=(4, 4), n_sensors=2,
        dead_injections=[(0, 0)],
    )
    assert degraded.flagged
    assert degraded.worst_skew > healthy.worst_skew


@pytest.mark.slow
def test_thousand_node_whole_tree_completes_sparse():
    run = simulate_whole_tree(levels=4, n_sensors=2, segments_per_wire=2)
    assert run.n_nodes >= 1000
    kernel = run.result.kernel_stats or {}
    assert kernel.get("sparse_nnz", 0) > 0
    assert len(run.result) > 0
    assert not run.flagged
