"""SPICE export / import round-trips."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.spice import format_value, from_spice, parse_value, to_spice
from repro.core.sensing import SkewSensor
from repro.devices.sources import ClockSource, DCSource, PulseSource, PWLSource
from repro.units import ns


# --------------------------------------------------------------------- #
# Value parsing
# --------------------------------------------------------------------- #

def test_parse_plain_and_exponent():
    assert parse_value("100") == 100.0
    assert parse_value("1.5e-13") == 1.5e-13
    assert parse_value("-3.3") == -3.3


def test_parse_engineering_suffixes():
    assert parse_value("80f") == pytest.approx(80e-15)
    assert parse_value("1.2u") == pytest.approx(1.2e-6)
    assert parse_value("100k") == pytest.approx(1e5)
    assert parse_value("2meg") == pytest.approx(2e6)


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_value("abc")
    with pytest.raises(ValueError):
        parse_value("1.2.3")


@settings(max_examples=50, deadline=None)
@given(value=st.floats(min_value=1e-18, max_value=1e9,
                       allow_nan=False, allow_infinity=False))
def test_format_parse_roundtrip(value):
    assert math.isclose(parse_value(format_value(value)), value, rel_tol=1e-6)


# --------------------------------------------------------------------- #
# Deck round trips
# --------------------------------------------------------------------- #

def sensor_deck():
    sensor = SkewSensor(parasitics=False)
    netlist = sensor.build()
    netlist.drive_dc("phi1", 0.0)
    netlist.drive(
        "phi2",
        PulseSource(v0=0, v1=5, delay=ns(2), rise=ns(0.2),
                    fall=ns(0.2), width=ns(9.8), period=ns(20)),
    )
    return netlist


def test_export_contains_all_devices():
    netlist = sensor_deck()
    deck = to_spice(netlist)
    assert deck.count("\nM") == len(netlist.mosfets)
    assert deck.count("\nC") == len(netlist.capacitors)
    assert ".MODEL" in deck
    assert deck.rstrip().endswith(".END")


def test_roundtrip_preserves_topology():
    original = sensor_deck()
    restored = from_spice(to_spice(original))
    assert len(restored.mosfets) == len(original.mosfets)
    assert len(restored.capacitors) == len(original.capacitors)
    for m in original.mosfets:
        twin = restored.find_mosfet(m.name)
        assert twin is not None
        assert twin.nodes() == m.nodes()
        assert twin.mtype is m.mtype
        assert twin.w == pytest.approx(m.w, rel=1e-5)
        assert twin.card.vt0 == pytest.approx(m.card.vt0, rel=1e-5)


def test_roundtrip_preserves_sources():
    original = sensor_deck()
    restored = from_spice(to_spice(original))
    assert isinstance(restored.sources["phi1"], DCSource)
    phi2 = restored.sources["phi2"]
    assert isinstance(phi2, PulseSource)
    for t in (0.0, ns(2.1), ns(5), ns(13)):
        assert phi2.value(t) == pytest.approx(
            original.sources["phi2"].value(t), abs=1e-9
        )


def test_roundtrip_simulates_identically():
    """The re-imported sensor behaves like the original."""
    from repro.analog.engine import TransientOptions, transient

    options = TransientOptions(dt_max=200e-12, reltol=5e-3)
    original = sensor_deck()
    restored = from_spice(to_spice(original))
    a = transient(original, t_stop=ns(8), record=["y1"], options=options)
    b = transient(restored, t_stop=ns(8), record=["y1"], options=options)
    for t in (ns(1), ns(3), ns(6)):
        assert a.wave("y1").at(t) == pytest.approx(b.wave("y1").at(t), abs=0.05)


def test_pwl_source_roundtrip():
    from repro.circuit.netlist import Netlist

    netlist = Netlist(name="pwl")
    netlist.drive("in", PWLSource([0.0, 1e-9, 2e-9], [0.0, 5.0, 1.0]))
    netlist.add_resistor("r1", "in", "out", 1000.0)
    netlist.add_capacitor("c1", "out", "0", 1e-13)
    restored = from_spice(to_spice(netlist))
    source = restored.sources["in"]
    assert source.value(0.5e-9) == pytest.approx(2.5)
    assert source.value(1.5e-9) == pytest.approx(3.0)


def test_clock_source_exports_as_pulse():
    from repro.circuit.netlist import Netlist

    netlist = Netlist(name="clk")
    netlist.drive("phi", ClockSource(period=ns(20), slew=ns(0.2), delay=ns(2)))
    netlist.add_capacitor("c1", "phi", "0", 1e-14)
    deck = to_spice(netlist)
    assert "PULSE(" in deck
    restored = from_spice(deck)
    for t in (0.0, ns(2.1), ns(7)):
        assert restored.sources["phi"].value(t) == pytest.approx(
            netlist.sources["phi"].value(t), abs=1e-9
        )


def test_import_rejects_unsupported_cards():
    with pytest.raises(ValueError):
        from_spice("L1 a b 1n\n.END")
    with pytest.raises(ValueError):
        from_spice("M1 d g s b missing_model W=1u L=1u\n.END")
    with pytest.raises(ValueError):
        from_spice("V1 a b DC 5\n.END")  # not node-to-ground
