"""Clock-spine topology and nominal-skew-aware pair selection."""

import numpy as np
import pytest

from repro.clocktree.faults import ResistiveOpen
from repro.clocktree.rc import sink_delays
from repro.clocktree.skew import select_critical_pairs
from repro.clocktree.spine import build_spine, rib_stations
from repro.clocktree.tree import Buffer
from repro.testing.scheme import ClockTestingScheme
from repro.units import ns


def test_spine_validation():
    with pytest.raises(ValueError):
        build_spine(n_ribs=0)
    with pytest.raises(ValueError):
        build_spine(n_ribs=2, sinks_per_rib=0)


def test_spine_sink_count():
    tree = build_spine(n_ribs=3, sinks_per_rib=2)
    # 3 stations x 2 sides x 2 sinks.
    assert len(tree.sinks()) == 12
    assert rib_stations(tree) == ["sp0", "sp1", "sp2"]


def test_spine_is_inherently_skewed():
    """Unlike the H-tree, near and far ribs arrive at different times."""
    tree = build_spine(n_ribs=4, sinks_per_rib=2, buffer=Buffer())
    delays = sink_delays(tree)
    values = np.array(list(delays.values()))
    assert values.max() - values.min() > ns(0.2)


def test_spine_far_ribs_arrive_later():
    tree = build_spine(n_ribs=4, sinks_per_rib=1, buffer=Buffer())
    delays = sink_delays(tree)
    # Sinks are numbered along the spine: the last rib's sinks are latest.
    first_rib = delays["s0"]
    last_rib = delays[f"s{len(tree.sinks()) - 1}"]
    assert last_rib > first_rib


def test_nominal_skew_filter_keeps_balanced_pairs_only():
    tree = build_spine(n_ribs=4, sinks_per_rib=2, buffer=Buffer())
    delays = sink_delays(tree)
    limit = ns(0.05)
    pairs = select_critical_pairs(
        tree, max_distance=10e-3, max_nominal_skew=limit
    )
    assert pairs, "same-rib / mirrored pairs must survive the filter"
    for p in pairs:
        assert abs(delays[p.sink_b] - delays[p.sink_a]) <= limit
    unfiltered = select_critical_pairs(tree, max_distance=10e-3)
    assert len(unfiltered) > len(pairs)


def test_scheme_on_spine_with_filtered_pairs():
    """With the nominal-skew filter the scheme stays quiet on the healthy
    comb and still catches a defect on a monitored rib."""
    tree = build_spine(n_ribs=3, sinks_per_rib=2, buffer=Buffer())
    pairs = select_critical_pairs(
        tree, max_distance=10e-3, max_nominal_skew=ns(0.03), top_k=4
    )
    from repro.testing.scheme import SensorPlacement
    from repro.core.sensing import SkewSensor

    scheme = ClockTestingScheme(
        tree,
        [SensorPlacement(pair=p, sensor=SkewSensor(), tau_min=ns(0.12))
         for p in pairs],
    )
    healthy = scheme.observe()
    assert all(not o.flagged for o in healthy)

    victim = pairs[0].sink_a
    fault = ResistiveOpen(node=victim, extra_resistance=12_000.0)
    scheme.observe(fault.apply(tree))
    assert scheme.flagged_pairs()


def test_scheme_on_spine_without_filter_self_alarms():
    """Choosing pairs blind to the design skew on a comb raises alarms on
    a healthy chip - the failure mode the filter exists for."""
    tree = build_spine(n_ribs=4, sinks_per_rib=2, buffer=Buffer())
    from repro.core.sensing import SkewSensor
    from repro.testing.scheme import SensorPlacement

    unbalanced = select_critical_pairs(tree, max_distance=10e-3, top_k=6)
    scheme = ClockTestingScheme(
        tree,
        [SensorPlacement(pair=p, sensor=SkewSensor(), tau_min=ns(0.12))
         for p in unbalanced],
    )
    observations = scheme.observe()
    assert any(o.flagged for o in observations)
