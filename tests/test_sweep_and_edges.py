"""DC sweeps, switching thresholds, and waveform edge characterisation."""

import numpy as np
import pytest

from repro.analog.sweep import dc_sweep, switching_threshold
from repro.analog.waveform import Waveform
from repro.circuit.netlist import Netlist
from repro.devices.mosfet import MosfetType
from repro.devices.process import nominal_process


def inverter_netlist(wp=4e-6, wn=2e-6):
    p = nominal_process()
    net = Netlist(name="inv")
    net.drive_dc("vdd", 5.0)
    net.drive_dc("in", 0.0)
    net.add_mosfet("mp", "out", "in", "vdd", MosfetType.PMOS, wp, 1.2e-6, p.pmos)
    net.add_mosfet("mn", "out", "in", "0", MosfetType.NMOS, wn, 1.2e-6, p.nmos)
    net.add_capacitor("cl", "out", "0", 50e-15)
    return net


# --------------------------------------------------------------------- #
# DC sweep
# --------------------------------------------------------------------- #

def test_sweep_rejects_empty_and_unknown():
    net = inverter_netlist()
    with pytest.raises(ValueError):
        dc_sweep(net, "in", [])
    with pytest.raises(KeyError):
        dc_sweep(net, "nonexistent", [0.0])
    with pytest.raises(KeyError):
        dc_sweep(net, "in", [0.0], record=["nope"])


def test_sweep_does_not_mutate_original():
    net = inverter_netlist()
    before = net.sources["in"].value(0.0)
    dc_sweep(net, "in", [0.0, 5.0], record=["out"])
    assert net.sources["in"].value(0.0) == before


def test_inverter_vtc_monotone_and_rail_to_rail():
    net = inverter_netlist()
    curve = dc_sweep(net, "in", np.linspace(0.0, 5.0, 21), record=["out"])
    out = curve["out"]
    assert out[0] == pytest.approx(5.0, abs=0.02)
    assert out[-1] == pytest.approx(0.0, abs=0.02)
    assert np.all(np.diff(out) <= 1e-6), "VTC must be non-increasing"
    assert curve["sweep"][3] == pytest.approx(0.75)


def test_switching_threshold_between_rails():
    net = inverter_netlist()
    vth = switching_threshold(net, "in", "out")
    assert 1.5 < vth < 3.0


def test_switching_threshold_shifts_with_ratio():
    """A stronger PMOS pushes the threshold up, a stronger NMOS down."""
    high = switching_threshold(inverter_netlist(wp=12e-6, wn=2e-6), "in", "out")
    low = switching_threshold(inverter_netlist(wp=4e-6, wn=8e-6), "in", "out")
    assert high > low


def test_switching_threshold_requires_crossing():
    # A buffer-style source follower never crosses v_out = v_in from above.
    p = nominal_process()
    net = Netlist(name="pullup")
    net.drive_dc("vdd", 5.0)
    net.drive_dc("in", 0.0)
    net.add_resistor("r", "vdd", "out", 1e4)
    with pytest.raises(ValueError):
        switching_threshold(net, "in", "out", v_hi=4.0)


def test_sensor_pulldown_transfer():
    """DC sweep across the sensor: grounded phi2 keeps the pull-downs off,
    so y1 stays high for any phi1 - the static view of the gating."""
    from repro.core.sensing import SkewSensor

    net = SkewSensor(parasitics=False).build()
    net.drive_dc("phi1", 0.0)
    net.drive_dc("phi2", 0.0)
    curve = dc_sweep(
        net, "phi1", np.linspace(0.0, 5.0, 11), record=["y1"],
        initial={"y1": 5.0, "y2": 5.0},
    )
    # e (gate y2=5) is on but d alone cannot fight: y2 stays high, so y1's
    # pull-down conducts... phi2 low keeps a on; with phi1 high b is off
    # and c (gate y2 high) off: y1 is then fought between nothing and the
    # d-e stack -> y1 is pulled low at high phi1.
    assert curve["y1"][0] == pytest.approx(5.0, abs=0.05)
    assert curve["y1"][-1] < 1.0


# --------------------------------------------------------------------- #
# Waveform edge measurements
# --------------------------------------------------------------------- #

def ramp():
    return Waveform(
        times=np.array([0.0, 1.0, 2.0, 3.0, 10.0]),
        values=np.array([0.0, 0.0, 5.0, 5.0, 5.0]),
    )


def test_transition_time_rising():
    w = ramp()
    # Linear 0->5 between t=1 and 2: 10-90 % spans 0.8 time units.
    assert w.transition_time(rising=True) == pytest.approx(0.8)


def test_transition_time_falling():
    w = Waveform(
        times=np.array([0.0, 1.0, 2.0, 5.0]),
        values=np.array([5.0, 5.0, 0.0, 0.0]),
    )
    assert w.transition_time(rising=False) == pytest.approx(0.8)


def test_transition_time_none_for_flat():
    flat = Waveform(times=np.array([0.0, 1.0]), values=np.array([2.0, 2.0]))
    assert flat.transition_time() is None


def test_settling_time():
    w = Waveform(
        times=np.array([0.0, 1.0, 2.0, 3.0, 4.0]),
        values=np.array([0.0, 6.0, 4.8, 5.1, 5.0]),
    )
    t = w.settling_time(target=5.0, band=0.25, after=0.0)
    # Samples at t >= 2 are all inside the band; the last outside sample
    # is at t = 1, so settling completes at the t = 2 sample.
    assert t == pytest.approx(2.0)


def test_settling_time_never_settles():
    w = Waveform(times=np.array([0.0, 1.0]), values=np.array([0.0, 1.0]))
    assert w.settling_time(target=5.0, band=0.1, after=0.0) is None


def test_overshoot():
    w = Waveform(
        times=np.array([0.0, 1.0, 2.0]),
        values=np.array([0.0, 5.6, 5.0]),
    )
    assert w.overshoot(target=5.0) == pytest.approx(0.6)
    assert w.overshoot(target=6.0) == 0.0
