"""Sec.-3 testability analysis (representative fault subsets).

The full universe takes ~10 s; the complete run lives in the benchmark
``bench_sec3_testability.py``.  Here each paper claim is exercised on the
minimal fault subset that carries it.
"""

import pytest

from repro.faults.models import (
    BridgingFault,
    NodeStuckAt,
    TransistorStuckOn,
    TransistorStuckOpen,
)
from repro.faults.universe import FaultUniverse
from repro.testing.testability import (
    ClockStimulus,
    analyze_sensor_testability,
)


def run(universe, **kwargs):
    return analyze_sensor_testability(
        stimulus=ClockStimulus(cycles=1),
        universe=universe,
        **kwargs,
    )


@pytest.fixture(scope="module")
def stuck_at_report():
    universe = FaultUniverse(
        stuck_at=[NodeStuckAt("y1", 0), NodeStuckAt("y1", 1),
                  NodeStuckAt("pA", 1), NodeStuckAt("nB", 0)]
    )
    return run(universe, check_skew_masking=False)


def test_reference_codes_alternate(stuck_at_report):
    """Fault-free: (0,0) after the rising edges, (1,1) after recovery."""
    assert stuck_at_report.reference_codes == [(0, 0), (1, 1)]


def test_node_stuck_ats_detected(stuck_at_report):
    """Sec. 3: 'the proposed circuit provides an error indication for each
    possible [node stuck-at] fault'."""
    assert stuck_at_report.coverage("stuck-at") == 1.0


def test_stuck_open_feedback_pullups_escape():
    """Sec. 3: all stuck-opens are detected apart from two of the parallel
    pull-up transistors."""
    universe = FaultUniverse(
        stuck_open=[TransistorStuckOpen(t) for t in ("a", "b", "c", "h", "d", "l")]
    )
    report = run(universe, check_skew_masking=False)
    undetected = {v.fault.transistor for v in report.undetected("stuck-open")}
    assert undetected == {"c", "h"}


def test_undetected_stuck_opens_do_not_mask_skew():
    """Sec. 3: those faults 'do not mask the presence of abnormal skews'."""
    universe = FaultUniverse(
        stuck_open=[TransistorStuckOpen("c"), TransistorStuckOpen("h")]
    )
    report = run(universe, check_skew_masking=True)
    for verdict in report.verdicts["stuck-open"]:
        assert not verdict.detected_logic
        assert verdict.masks_skew is False


def test_stuck_on_parallel_pullups_escape_series_detected():
    """Sec. 3: 'the stuck-ons affecting the parallel pull-up transistors
    (b, c, g, h) of both cells are not detectable' while the others are."""
    universe = FaultUniverse(
        stuck_on=[TransistorStuckOn(t) for t in ("a", "b", "c", "d", "e")]
    )
    report = run(universe, check_skew_masking=False)
    undetected = {v.fault.transistor for v in report.undetected("stuck-on")}
    assert undetected == {"b", "c"}


def test_output_bridge_undetected_with_common_clocks():
    """Sec. 3: the y1-y2 bridge 'cannot be detected with the considered
    sequence (because they require that phi1 and phi2 are controlled to
    different logic values)'."""
    universe = FaultUniverse(bridging=[BridgingFault("y1", "y2")])
    report = run(universe, check_skew_masking=False)
    verdict = report.verdicts["bridging"][0]
    assert not verdict.detected_logic
    assert not verdict.detected_iddq


def test_bridge_to_clock_detected_by_iddq():
    """A bridge from an output to a clock line fights the clock driver in
    one phase: large quiescent current."""
    universe = FaultUniverse(bridging=[BridgingFault("phi1", "y1")])
    report = run(universe, check_skew_masking=False)
    verdict = report.verdicts["bridging"][0]
    assert verdict.detected_iddq
    assert verdict.iddq_current > 1e-4


def test_stuck_at_draws_static_current():
    universe = FaultUniverse(stuck_at=[NodeStuckAt("y1", 0)])
    report = run(universe, check_skew_masking=False)
    verdict = report.verdicts["stuck-at"][0]
    # y1 tied low while the pull-up is on: mA-scale fight.
    assert verdict.iddq_current > 1e-4
    assert verdict.detected


def test_summary_rows_structure(stuck_at_report):
    rows = stuck_at_report.summary_rows()
    kinds = [row[0] for row in rows]
    assert kinds == ["stuck-at", "stuck-open", "stuck-on", "bridging"]
    sa = rows[0]
    assert sa[1] == 4 and sa[2] == 1.0


def test_coverage_nan_for_empty_population(stuck_at_report):
    import math

    assert math.isnan(stuck_at_report.coverage("bridging"))


def test_stimulus_observation_plan():
    stimulus = ClockStimulus(period=10e-9, settle=2e-9, cycles=2)
    bounds = stimulus.phase_boundaries()
    assert bounds[0] == 2e-9
    assert bounds[-1] == pytest.approx(22e-9)
    assert len(stimulus.sample_times()) == 4
    windows = stimulus.quiescent_windows()
    assert all(t1 > t0 for t0, t1 in windows)
