"""Tree-level fault injection and skew analysis / pair selection."""

import numpy as np
import pytest

from repro.clocktree.faults import (
    BufferSlowdown,
    CrosstalkCoupling,
    ResistiveOpen,
    SupplyNoise,
    perturb_tree,
    skew_change,
)
from repro.clocktree.htree import build_h_tree
from repro.clocktree.rc import sink_delays
from repro.clocktree.skew import pairwise_skew, select_critical_pairs, sink_skew_table
from repro.clocktree.tree import Buffer


@pytest.fixture(scope="module")
def tree():
    return build_h_tree(levels=2, buffer=Buffer())


@pytest.fixture(scope="module")
def nominal(tree):
    return sink_delays(tree)


def test_fault_does_not_mutate_original(tree, nominal):
    sink = sorted(nominal)[0]
    ResistiveOpen(node=sink, extra_resistance=5000.0).apply(tree)
    assert sink_delays(tree) == nominal


def test_resistive_open_delays_subtree(tree, nominal):
    sink = sorted(nominal)[0]
    faulty = ResistiveOpen(node=sink, extra_resistance=5000.0).apply(tree)
    delays = sink_delays(faulty)
    assert delays[sink] > nominal[sink]
    others = [s for s in nominal if s != sink]
    for s in others:
        assert delays[s] == pytest.approx(nominal[s], rel=1e-9)


def test_resistive_open_on_root_rejected(tree):
    with pytest.raises(ValueError):
        ResistiveOpen(node="root", extra_resistance=100.0).apply(tree)


def test_crosstalk_slows_victim(tree, nominal):
    sink = sorted(nominal)[2]
    faulty = CrosstalkCoupling(node=sink, coupling_capacitance=300e-15).apply(tree)
    assert sink_delays(faulty)[sink] > nominal[sink]


def test_buffer_slowdown_delays_whole_branch(tree, nominal):
    branch = next(
        n.name for n in tree.walk() if n.buffer is not None and n.parent is not None
    )
    faulty = BufferSlowdown(node=branch, factor=1.5).apply(tree)
    delays = sink_delays(faulty)
    affected = [
        s.name for s in tree.sinks()
        if any(p.name == branch for p in tree.path_to(s))
    ]
    assert affected
    for s in affected:
        assert delays[s] > nominal[s]


def test_buffer_slowdown_requires_buffer(tree):
    sink = tree.sinks()[0].name
    with pytest.raises(ValueError):
        BufferSlowdown(node=sink, factor=1.5).apply(tree)


def test_supply_noise_scales_region(tree, nominal):
    faulty = SupplyNoise(node="root", factor=1.2).apply(tree)
    delays = sink_delays(faulty)
    for s in nominal:
        assert delays[s] > nominal[s]


def test_supply_noise_requires_buffers():
    bare = build_h_tree(levels=1)  # unbuffered
    with pytest.raises(ValueError):
        SupplyNoise(node="root", factor=1.2).apply(bare)


def test_perturb_tree_creates_skew(tree):
    rng = np.random.default_rng(11)
    perturbed = perturb_tree(tree, rng, relative_variation=0.15)
    delays = np.array(list(sink_delays(perturbed).values()))
    assert delays.max() - delays.min() > 1e-12  # symmetric tree broken


def test_skew_change_helper(tree, nominal):
    sink = sorted(nominal)[0]
    other = sorted(nominal)[1]
    faulty = sink_delays(
        ResistiveOpen(node=sink, extra_resistance=5000.0).apply(tree)
    )
    change = skew_change(nominal, faulty, sink, other)
    assert change < 0  # sink_a got slower, so t_b - t_a decreased


# --------------------------------------------------------------------- #
# Skew analysis / critical pairs
# --------------------------------------------------------------------- #

def test_pairwise_skew_antisymmetric_zero_on_htree(tree):
    skews = pairwise_skew(tree)
    assert all(abs(v) < 1e-15 for v in skews.values())


def test_sink_skew_table_structure(tree):
    names, table = sink_skew_table(tree)
    assert table.shape == (len(names), len(names))
    assert np.allclose(table, -table.T)


def test_select_critical_pairs_respects_distance(tree):
    chip = 10e-3
    pairs = select_critical_pairs(tree, max_distance=chip / 4)
    for p in pairs:
        assert p.distance <= chip / 4
    assert pairs, "quadrant-local pairs must exist"


def test_select_critical_pairs_sorted_by_criticality(tree):
    pairs = select_critical_pairs(tree, max_distance=20e-3)
    crit = [p.criticality for p in pairs]
    assert crit == sorted(crit, reverse=True)


def test_select_critical_pairs_top_k(tree):
    pairs = select_critical_pairs(tree, max_distance=20e-3, top_k=3)
    assert len(pairs) == 3


def test_select_critical_pairs_validates_distance(tree):
    with pytest.raises(ValueError):
        select_critical_pairs(tree, max_distance=0.0)


def test_criticality_reflects_unshared_path(tree):
    """Sinks in different halves of the die share less of their root path
    than same-quadrant sinks, hence higher criticality."""
    pairs = select_critical_pairs(tree, max_distance=50e-3)
    by_pair = {(p.sink_a, p.sink_b): p.criticality for p in pairs}
    sinks = sorted(s.name for s in tree.sinks())
    # A same-parent pair exists with minimal criticality.
    least = min(by_pair.values())
    most = max(by_pair.values())
    assert most > least
