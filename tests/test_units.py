"""Unit helper conversions."""

import math

from repro import units


def test_ns_converts_to_seconds():
    assert math.isclose(units.ns(2.5), 2.5e-9)


def test_ps_converts_to_seconds():
    assert math.isclose(units.ps(100.0), 1e-10)


def test_us_converts_to_seconds():
    assert math.isclose(units.us(1.0), 1e-6)


def test_ff_converts_to_farads():
    assert math.isclose(units.fF(80), 80e-15)


def test_pf_converts_to_farads():
    assert math.isclose(units.pF(1.0), 1e-12)


def test_um_converts_to_metres():
    assert math.isclose(units.um(1.2), 1.2e-6)


def test_mm_converts_to_metres():
    assert math.isclose(units.mm(10.0), 0.01)


def test_kohm_converts_to_ohms():
    assert math.isclose(units.kohm(2.0), 2000.0)


def test_ohm_is_identity():
    assert units.ohm(100.0) == 100.0


def test_current_units():
    assert math.isclose(units.mA(1.0), 1e-3)
    assert math.isclose(units.uA(10.0), 1e-5)


def test_roundtrips():
    assert math.isclose(units.to_ns(units.ns(0.16)), 0.16)
    assert math.isclose(units.to_fF(units.fF(240)), 240.0)


def test_interpretation_threshold_matches_paper():
    """Sec. 2: logic threshold VDD/2 with 10 % worst-case variation
    gives 2.75 V."""
    assert math.isclose(units.VTH_INTERPRET, 2.75)
    assert units.VDD == 5.0
