"""VCD export of logic traces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logicsim.circuit import LogicCircuit
from repro.logicsim.gates import GateType
from repro.logicsim.vcd import _identifier, parse_vcd_values, to_vcd
from repro.units import ns


def simple_trace():
    circuit = LogicCircuit()
    circuit.add_gate("inv", GateType.NOT, ["a"], "z", ns(1))
    return circuit.simulate(
        {"a": [(ns(5), 1), (ns(9), 0)]}, clock_edges=[], t_end=ns(15)
    )


def test_identifier_uniqueness():
    ids = {_identifier(k) for k in range(500)}
    assert len(ids) == 500
    with pytest.raises(ValueError):
        _identifier(-1)


def test_vcd_contains_header_and_vars():
    vcd = to_vcd(simple_trace())
    assert "$timescale 1ps $end" in vcd
    assert "$var wire 1" in vcd
    assert "$enddefinitions $end" in vcd
    assert " a $end" in vcd and " z $end" in vcd


def test_vcd_roundtrip_changes():
    trace = simple_trace()
    parsed = parse_vcd_values(to_vcd(trace))
    # a: initial 0, 1 at 5 ns, 0 at 9 ns (ticks in ps).
    assert parsed["a"] == [(0, 0), (5000, 1), (9000, 0)]
    # z: settled initial 1, 0 at 6 ns, 1 at 10 ns.
    assert parsed["z"] == [(0, 1), (6000, 0), (10000, 1)]


def test_vcd_net_filter():
    trace = simple_trace()
    vcd = to_vcd(trace, nets=["z"])
    parsed = parse_vcd_values(vcd)
    assert set(parsed) == {"z"}
    with pytest.raises(KeyError):
        to_vcd(trace, nets=["missing"])


def test_vcd_custom_timescale():
    trace = simple_trace()
    vcd = to_vcd(trace, timescale="1ns", time_unit=1e-9)
    parsed = parse_vcd_values(vcd)
    assert parsed["a"] == [(0, 0), (5, 1), (9, 0)]


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(1, 50), st.integers(0, 1)),
        min_size=1, max_size=8, unique_by=lambda e: e[0],
    )
)
def test_vcd_roundtrip_property(edges):
    """Arbitrary stimulus round-trips through VCD without loss (after
    de-duplicating consecutive equal values, as VCD mandates)."""
    circuit = LogicCircuit()
    circuit.add_gate("buf", GateType.BUF, ["a"], "z", ns(0.1))
    stimulus = sorted((ns(t), v) for t, v in edges)
    trace = circuit.simulate({"a": stimulus}, clock_edges=[], t_end=ns(60))
    parsed = parse_vcd_values(to_vcd(trace))
    expected = [(0, trace.changes["a"][0][1])]
    for t, v in trace.changes["a"][1:]:
        if v != expected[-1][1]:
            expected.append((int(round(t / 1e-12)), v))
    assert parsed["a"] == expected
