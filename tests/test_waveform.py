"""Waveform container and measurements."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analog.waveform import Waveform


def make(times, values, name="w"):
    return Waveform(times=np.asarray(times, float), values=np.asarray(values, float), name=name)


def test_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        make([0, 1], [1])


def test_rejects_decreasing_times():
    with pytest.raises(ValueError):
        make([0, 2, 1], [0, 0, 0])


def test_at_interpolates():
    w = make([0, 1, 2], [0, 10, 0])
    assert w.at(0.5) == 5.0
    assert w.at(1.5) == 5.0


def test_at_clamps_at_ends():
    w = make([1, 2], [3, 7])
    assert w.at(0.0) == 3.0
    assert w.at(9.0) == 7.0


def test_window_min_includes_interpolated_endpoints():
    w = make([0, 1, 2], [0, 10, 0])
    # In [0.5, 1.5] the actual minimum is at the endpoints (5.0).
    assert w.window_min(0.5, 1.5) == 5.0
    assert w.window_max(0.5, 1.5) == 10.0


def test_window_defaults_to_full_span():
    w = make([0, 1, 2], [3, -1, 4])
    assert w.window_min() == -1.0
    assert w.window_max() == 4.0


def test_window_rejects_reversed_bounds():
    w = make([0, 1], [0, 1])
    with pytest.raises(ValueError):
        w.window_min(1.0, 0.5)


def test_mean_of_triangle():
    w = make([0, 1, 2], [0, 10, 0])
    assert w.mean(0, 2) == pytest.approx(5.0)


def test_mean_of_degenerate_window():
    w = make([0, 1], [2, 4])
    assert w.mean(0.5, 0.5) == pytest.approx(3.0)


def test_first_crossing_rising():
    w = make([0, 1, 2], [0, 10, 0])
    assert w.first_crossing(5.0, rising=True) == pytest.approx(0.5)


def test_first_crossing_falling():
    w = make([0, 1, 2], [0, 10, 0])
    assert w.first_crossing(5.0, rising=False) == pytest.approx(1.5)


def test_first_crossing_after_restriction():
    w = make([0, 1, 2, 3, 4], [0, 10, 0, 10, 0])
    assert w.first_crossing(5.0, rising=True, after=1.5) == pytest.approx(2.5)


def test_first_crossing_none_when_absent():
    w = make([0, 1], [0, 1])
    assert w.first_crossing(5.0) is None
    assert w.first_crossing(0.5, after=2.0) is None


def test_slice_preserves_values():
    w = make([0, 1, 2], [0, 10, 0])
    s = w.slice(0.5, 1.5)
    assert s.t_start == 0.5
    assert s.at(1.0) == 10.0
    assert s.final_value() == 5.0


@settings(max_examples=60, deadline=None)
@given(
    data=st.lists(st.floats(-5, 5), min_size=2, max_size=12),
    frac=st.tuples(st.floats(0, 1), st.floats(0, 1)),
)
def test_window_min_bounds_all_inside_samples(data, frac):
    """window_min is <= every sample inside the window and >= global min."""
    times = np.arange(len(data), dtype=float)
    w = make(times, data)
    a, b = sorted(
        (frac[0] * (len(data) - 1), frac[1] * (len(data) - 1))
    )
    wmin = w.window_min(a, b)
    inside = [v for t, v in zip(times, data) if a <= t <= b]
    for v in inside:
        assert wmin <= v + 1e-9
    assert wmin >= min(data) - 1e-9


@settings(max_examples=60, deadline=None)
@given(data=st.lists(st.floats(-5, 5), min_size=2, max_size=12))
def test_mean_within_extremes(data):
    times = np.arange(len(data), dtype=float)
    w = make(times, data)
    m = w.mean()
    assert min(data) - 1e-9 <= m <= max(data) + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    data=st.lists(st.floats(0, 10), min_size=3, max_size=10),
    level=st.floats(0.5, 9.5),
)
def test_crossing_value_matches_level(data, level):
    """Interpolated crossing time reproduces the level when evaluated."""
    times = np.arange(len(data), dtype=float)
    w = make(times, data)
    t = w.first_crossing(level, rising=True)
    if t is not None:
        assert w.at(t) == pytest.approx(level, abs=1e-6)
