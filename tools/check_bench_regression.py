#!/usr/bin/env python
"""Compare fresh BENCH_*.json throughput against committed baselines.

Walks every ``BENCH_*.json`` in the baseline directory, finds each
``samples_per_s`` figure (at any nesting depth - the records keep one
per backend leg), looks up the same path in the freshly generated file
and reports the relative change.  A figure that regressed by more than
the threshold (default 25 %) is emitted as a GitHub Actions
``::warning::`` annotation, so the non-blocking CI job flags it on the
run without failing the build - shared-runner timings are noisy, and a
human should look before anyone reverts.

``prefix_hit_rate`` figures are checked too, with a sharper rule: a
rate that was positive in the baseline and is exactly zero in the fresh
record means the prefix warm-start planner stopped engaging (a silent
functional regression, not timing noise), so it is always flagged.

``concurrency_speedup`` figures (the service scheduler bench) get the
same kind of functional rule: a speedup that was above 1.0 in the
baseline and has fallen to 1.0 or below means the concurrent scheduler
stopped overlapping campaigns (serialisation bug), so it is always
flagged regardless of the timing threshold.

``sparse_speedup`` figures (the whole-tree bench) carry the strictest
rule: any fresh value at or below 1.0 is flagged even without a
baseline entry - the sparse MNA path losing to dense assembly at
10^3-node clock trees means its pattern reuse or factor caching broke.

``shard_speedup`` figures (the batch benches' sharded leg) get the same
unconditional rule: the sharded leg only runs with two or more workers,
and the whole point of fanning stacks over a pool is to multiply the
SIMD gain by the core count - a value at or below 1.0 on a multi-core
runner means sharding costs more than it buys (IPC, lost prefix
sharing, serialised stacks) and must be looked at, baseline or not.
The one principled exception: a record whose own ``cpu_count`` says the
box had a single core measured pure fan-out overhead (two forked
workers time-slicing one CPU cannot beat one in-process worker), so
the rule only fires where a fan-out could have won.

Usage::

    python tools/check_bench_regression.py \
        --baseline benchmarks/baseline --fresh benchmarks/out

Exit status is 0 even when regressions are found unless ``--strict``
is given (for local use, where timings are trustworthy).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, Iterator, Tuple

#: Relative slowdown above which a figure is flagged.
DEFAULT_THRESHOLD = 0.25

#: The metric compared; every BENCH record carries one per backend leg.
METRIC = "samples_per_s"

#: Warm-start effectiveness metric: compared with a drop-to-zero rule
#: rather than a relative-slowdown threshold.
HIT_RATE_METRIC = "prefix_hit_rate"

#: Concurrent-scheduler effectiveness metric: flagged when it falls
#: from >1 in the baseline to <=1 fresh (campaigns stopped overlapping).
SPEEDUP_METRIC = "concurrency_speedup"

#: Sparse-engine effectiveness metric (the whole-tree bench): a value at
#: or below 1.0 means the sparse MNA path no longer beats the dense one
#: at large node counts - always flagged, baseline or not, because the
#: sparse path exists solely for that speedup.
SPARSE_SPEEDUP_METRIC = "sparse_speedup"

#: Batch-sharding effectiveness metric (the batch benches' sharded
#: leg): flagged whenever a fresh value sits at or below 1.0 -
#: process-sharding lockstep stacks that fails to beat one worker is
#: functional breakage of the fan-out, never a reason to keep it.
SHARD_SPEEDUP_METRIC = "shard_speedup"


def iter_metrics(
    record: object, metric: str = METRIC, path: str = ""
) -> Iterator[Tuple[str, float]]:
    """Yield ``(json_path, value)`` for every ``metric`` entry."""
    if isinstance(record, dict):
        for key, value in sorted(record.items()):
            where = f"{path}.{key}" if path else key
            if key == metric and isinstance(value, (int, float)):
                yield where, float(value)
            else:
                yield from iter_metrics(value, metric, where)
    elif isinstance(record, list):
        for index, value in enumerate(record):
            yield from iter_metrics(value, metric, f"{path}[{index}]")


def load_metrics(path: str, metric: str = METRIC) -> Dict[str, float]:
    """All ``metric`` figures of one BENCH file, keyed by JSON path."""
    with open(path) as handle:
        return dict(iter_metrics(json.load(handle), metric))


def compare(
    baseline_dir: str, fresh_dir: str, threshold: float
) -> Tuple[int, int]:
    """Print a comparison table; return (figures_compared, regressions)."""
    compared = regressions = 0
    pattern = os.path.join(baseline_dir, "BENCH_*.json")
    baselines = sorted(glob.glob(pattern))
    if not baselines:
        print(f"no BENCH_*.json baselines under {baseline_dir}")
        return 0, 0
    for baseline_path in baselines:
        name = os.path.basename(baseline_path)
        fresh_path = os.path.join(fresh_dir, name)
        if not os.path.exists(fresh_path):
            print(f"{name}: no fresh record (bench not rerun) - skipped")
            continue
        try:
            base = load_metrics(baseline_path)
            fresh = load_metrics(fresh_path)
        except (OSError, json.JSONDecodeError, KeyError) as error:
            print(
                f"::warning file={name}::unreadable bench record "
                f"({type(error).__name__}: {error}) - skipped"
            )
            continue
        for where, base_value in sorted(base.items()):
            if base_value <= 0.0:
                continue
            fresh_value = fresh.get(where)
            if fresh_value is None:
                # A metric the fresh record stopped emitting is itself a
                # signal (telemetry regression), not a KeyError and not a
                # silent skip: annotate the run.
                print(
                    f"::warning file={name}::{where} ({METRIC}) absent "
                    "from the fresh record - bench telemetry changed?"
                )
                continue
            compared += 1
            change = (fresh_value - base_value) / base_value
            marker = "ok"
            if change < -threshold:
                regressions += 1
                marker = "REGRESSED"
                print(
                    f"::warning file={name}::{where} regressed "
                    f"{-change * 100:.1f}% ({base_value:.2f} -> "
                    f"{fresh_value:.2f} {METRIC})"
                )
            print(
                f"{name}: {where} = {fresh_value:8.2f} vs baseline "
                f"{base_value:8.2f} ({change:+.1%}) {marker}"
            )
        base_rates = load_metrics(baseline_path, HIT_RATE_METRIC)
        fresh_rates = load_metrics(fresh_path, HIT_RATE_METRIC)
        for where, base_rate in sorted(base_rates.items()):
            if base_rate <= 0.0:
                continue
            fresh_rate = fresh_rates.get(where)
            if fresh_rate is None:
                print(
                    f"::warning file={name}::{where} ({HIT_RATE_METRIC}) "
                    "absent from the fresh record - warm-start telemetry "
                    "no longer reported?"
                )
                continue
            compared += 1
            marker = "ok"
            if fresh_rate == 0.0:
                # Not noise: the planner stopped engaging entirely.
                regressions += 1
                marker = "REGRESSED"
                print(
                    f"::warning file={name}::{where} dropped to zero "
                    f"(baseline {base_rate:.2f}) - prefix warm-start "
                    "no longer engages"
                )
            print(
                f"{name}: {where} = {fresh_rate:8.2f} vs baseline "
                f"{base_rate:8.2f} {marker}"
            )
        base_speedups = load_metrics(baseline_path, SPEEDUP_METRIC)
        fresh_speedups = load_metrics(fresh_path, SPEEDUP_METRIC)
        for where, base_speedup in sorted(base_speedups.items()):
            if base_speedup <= 1.0:
                continue
            fresh_speedup = fresh_speedups.get(where)
            if fresh_speedup is None:
                print(
                    f"::warning file={name}::{where} ({SPEEDUP_METRIC}) "
                    "absent from the fresh record - concurrency bench "
                    "telemetry changed?"
                )
                continue
            compared += 1
            marker = "ok"
            if fresh_speedup <= 1.0:
                # Not noise: two slots no longer beat one at all.
                regressions += 1
                marker = "REGRESSED"
                print(
                    f"::warning file={name}::{where} fell to "
                    f"{fresh_speedup:.2f}x (baseline {base_speedup:.2f}x) "
                    "- concurrent campaigns no longer overlap"
                )
            print(
                f"{name}: {where} = {fresh_speedup:7.2f}x vs baseline "
                f"{base_speedup:7.2f}x {marker}"
            )
        for where, fresh_sparse in sorted(
            load_metrics(fresh_path, SPARSE_SPEEDUP_METRIC).items()
        ):
            # Unconditional rule - no baseline needed: the sparse engine
            # failing to beat dense at whole-tree sizes is functional
            # breakage (pattern reuse or factor caching lost), never
            # shared-runner timing noise.
            compared += 1
            marker = "ok"
            if fresh_sparse <= 1.0:
                regressions += 1
                marker = "REGRESSED"
                print(
                    f"::warning file={name}::{where} at "
                    f"{fresh_sparse:.2f}x - sparse MNA no longer beats "
                    "the dense path at whole-tree node counts"
                )
            print(
                f"{name}: {where} = {fresh_sparse:7.2f}x sparse-vs-dense "
                f"{marker}"
            )
        with open(fresh_path) as handle:
            fresh_cores = json.load(handle).get("cpu_count") or 0
        for where, fresh_shard in sorted(
            load_metrics(fresh_path, SHARD_SPEEDUP_METRIC).items()
        ):
            # Unconditional, like sparse_speedup: the sharded leg only
            # reports when it actually fanned out (>= 2 workers), and a
            # fan-out that loses to one worker is broken, not noisy -
            # except on a single-core box, where the record measured
            # pure fan-out overhead and can only lose.
            compared += 1
            marker = "ok"
            if fresh_shard <= 1.0 and fresh_cores < 2:
                marker = "ok (single-core box: overhead-only measurement)"
            elif fresh_shard <= 1.0:
                regressions += 1
                marker = "REGRESSED"
                print(
                    f"::warning file={name}::{where} at "
                    f"{fresh_shard:.2f}x - sharded batch stacks no longer "
                    "beat the single-worker batch path"
                )
            print(
                f"{name}: {where} = {fresh_shard:7.2f}x sharded-vs-single "
                f"{marker}"
            )
    return compared, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="benchmarks/baseline",
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh", default="benchmarks/out",
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative slowdown that counts as a regression (default 0.25)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when any figure regressed (local runs)",
    )
    args = parser.parse_args(argv)
    compared, regressions = compare(args.baseline, args.fresh, args.threshold)
    print(
        f"compared {compared} throughput figure(s); "
        f"{regressions} regressed more than {args.threshold:.0%}"
    )
    return 1 if (args.strict and regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
